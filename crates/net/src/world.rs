//! The networked Theorem 2 world: parties as frame-speaking state machines.
//!
//! [`NetSbcWorld`] re-runs the real-world experiment of
//! `sbc_core::worlds::RealSbcWorld` with one structural change: nothing
//! crosses a party boundary except encoded [`Frame`]s moved by a
//! [`Transport`]. Each party is an isolated [`NetParty`] state machine;
//! the hybrid functionalities (`F_UBC`, `F_TLE`, `F_RO`) live behind the
//! functionality host, answered over request/response frames; the
//! environment's submissions and clock ticks arrive as frames too.
//!
//! # The conformance envelope
//!
//! The backend is held to `CompareLevel::Exact` transcript equality
//! against the in-process world (same seed, same schedule). That works
//! because the streams fork identically
//! ([`fork_world_streams`]), every
//! functionality interaction is replayed in the same order the in-process
//! round makes it, and the only frames the network is free to disturb —
//! party-to-party `(c, τ_rel, y)` wire deliveries — are *inert* on
//! arrival: a recorded wire has no observable effect until the release
//! round, the replay dedup is order-insensitive for distinct wires, and
//! release outputs are sorted. Delay (clamped before the period end ∆
//! guarantees), reorder, duplication and healing partitions therefore
//! cannot change outputs or leaks. Dropping a corrupted sender's wires
//! *does* change the received sets — that knob sits outside the `Exact`
//! envelope and has its own tests.

use crate::codec::{Endpoint, Frame, FrameKind};
use crate::transport::{Loopback, SimConfig, SimNet, Transport, TransportStats};
use sbc_broadcast::ubc::func::UbcFunc;
use sbc_core::error::SbcError;
use sbc_core::protocol::{parse_sbc_wire, sbc_wire, wake_up, WireLog};
use sbc_core::worlds::{fork_world_streams, SbcBackend, SbcParams};
use sbc_primitives::drbg::Drbg;
use sbc_tle::func::TleFunc;
use sbc_uc::exec::SbcWorld;
use sbc_uc::ids::PartyId;
use sbc_uc::ro::{Caller, RandomOracle};
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{AdvCommand, Leak, World, WorldCore};
use std::marker::PhantomData;

/// The link a [`NetParty`] speaks through: posts one request frame to the
/// functionality host and returns the response frame's kind, if any.
/// Every call crosses the wire — encode, transport, decode — twice.
type HostLink<'a> = dyn FnMut(FrameKind) -> Option<FrameKind> + 'a;

#[derive(Clone, Debug)]
struct PendEntry {
    rho: Vec<u8>,
    msg: Value,
    encrypted: bool,
    broadcast: bool,
}

/// One party of the networked world: the `Π_SBC` per-party state machine
/// of `sbc_core::protocol::SbcParty`, re-expressed over frames. Every
/// statement that draws randomness, leaks, or talks to a functionality
/// happens in the same order as the in-process party — that is the whole
/// bit-compatibility argument.
#[derive(Debug)]
pub struct NetParty {
    id: u32,
    phi: u64,
    delta: u64,
    tle_delay: u64,
    rng: Drbg,
    pend: Vec<PendEntry>,
    rec: WireLog,
    t_awake: Option<u64>,
    t_end: Option<u64>,
    tau_rel: Option<u64>,
    last_advance: Option<u64>,
    woke_up_sent: bool,
}

impl NetParty {
    fn new(id: u32, params: &SbcParams, rng: Drbg) -> Self {
        NetParty {
            id,
            phi: params.phi,
            delta: params.delta,
            tle_delay: params.tle_delay,
            rng,
            pend: Vec::new(),
            rec: WireLog::new(),
            t_awake: None,
            t_end: None,
            tau_rel: None,
            last_advance: None,
            woke_up_sent: false,
        }
    }

    /// A throwaway party used while the real one is checked out of the
    /// world for a frame dispatch.
    fn placeholder() -> Self {
        NetParty::new(
            u32::MAX,
            &SbcParams::default_for(1),
            Drbg::from_seed(b"net/placeholder"),
        )
    }

    /// The agreed release time, once awake.
    pub fn tau_rel(&self) -> Option<u64> {
        self.tau_rel
    }

    /// The end of the broadcast period, once awake.
    pub fn t_end(&self) -> Option<u64> {
        self.t_end
    }

    fn reset_period(&mut self) {
        self.pend.clear();
        self.rec.clear();
        self.t_awake = None;
        self.t_end = None;
        self.tau_rel = None;
        self.woke_up_sent = false;
    }

    fn is_idle(&self) -> bool {
        self.t_awake.is_none() && self.pend.is_empty() && self.rec.is_empty()
    }

    fn pending_messages(&self) -> Vec<Value> {
        self.pend
            .iter()
            .filter(|e| !e.broadcast)
            .map(|e| e.msg.clone())
            .collect()
    }

    /// A `Submit` frame: the `(sid, Broadcast, M)` input.
    fn on_submit(&mut self, msg: Value, now: u64, link: &mut HostLink<'_>) {
        match self.t_awake {
            None => {
                let rho = self.rng.gen_bytes(32);
                self.pend.push(PendEntry {
                    rho,
                    msg,
                    encrypted: false,
                    broadcast: false,
                });
                if !self.woke_up_sent {
                    self.woke_up_sent = true;
                    link(FrameKind::Cast(wake_up()));
                }
            }
            Some(_) => {
                let (Some(end), Some(tau_rel)) = (self.t_end, self.tau_rel) else {
                    return;
                };
                if now + self.tle_delay >= end {
                    return; // cannot be ready before the period closes
                }
                let rho = self.rng.gen_bytes(32);
                link(FrameKind::TleEnc {
                    rho: Value::bytes(&rho),
                    tau: tau_rel,
                });
                self.pend.push(PendEntry {
                    rho,
                    msg,
                    encrypted: true,
                    broadcast: false,
                });
            }
        }
    }

    /// A control-plane `Deliver`: a `Wake_Up` (or a wire that arrived
    /// with zero latency in the same pump).
    fn on_deliver(&mut self, payload: &Value, now: u64, link: &mut HostLink<'_>) {
        if payload == &wake_up() {
            if self.t_awake.is_none() {
                self.t_awake = Some(now);
                self.t_end = Some(now + self.phi);
                let tau_rel = now + self.phi + self.delta;
                self.tau_rel = Some(tau_rel);
                // Encrypt everything queued while asleep.
                for e in self.pend.iter_mut().filter(|e| !e.encrypted) {
                    e.encrypted = true;
                    link(FrameKind::TleEnc {
                        rho: Value::bytes(&e.rho),
                        tau: tau_rel,
                    });
                }
            }
            return;
        }
        self.on_wire(payload, now);
    }

    /// A data-plane wire delivery: pure recording, no functionality.
    fn on_wire(&mut self, payload: &Value, now: u64) {
        let Some((ct, tau, y)) = parse_sbc_wire(payload) else {
            return;
        };
        let (Some(tau_rel), Some(end)) = (self.tau_rel, self.t_end) else {
            return;
        };
        if tau != tau_rel || now >= end {
            return;
        }
        self.rec.insert(ct, y);
    }

    /// A `Tick` frame: the round step. Returns the release output vector
    /// at `τ_rel`.
    fn on_tick(&mut self, now: u64, link: &mut HostLink<'_>) -> Option<Value> {
        if self.last_advance == Some(now) {
            return None;
        }
        self.last_advance = Some(now);
        let (Some(awake), Some(end), Some(tau_rel)) = (self.t_awake, self.t_end, self.tau_rel)
        else {
            return None;
        };
        if awake <= now && now < end {
            // Fetch ciphertexts that became ready and broadcast them.
            let triples = match link(FrameKind::TleRetrieve) {
                Some(FrameKind::TleTriples(v)) => v,
                _ => Value::list([]),
            };
            for triple in triples.as_list().unwrap_or(&[]) {
                let Some([rho_v, ct, _tau]) = triple.as_list() else {
                    continue;
                };
                let Some(rho) = rho_v.as_bytes() else {
                    continue;
                };
                let Some(entry) = self.pend.iter_mut().find(|e| e.rho == rho && !e.broadcast)
                else {
                    continue;
                };
                entry.broadcast = true;
                let m_bytes = entry.msg.encode();
                let Some(FrameKind::RoAnswer(eta)) = link(FrameKind::RoQuery {
                    x: entry.rho.clone(),
                    len: m_bytes.len() as u64,
                }) else {
                    continue;
                };
                let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
                link(FrameKind::Cast(sbc_wire(ct, tau_rel, &y)));
            }
        }
        if now == tau_rel {
            let mut out = Vec::new();
            for (ct, y) in self.rec.entries() {
                let Some(FrameKind::TleDecResp(resp)) = link(FrameKind::TleDec {
                    ct: ct.clone(),
                    tau: tau_rel,
                }) else {
                    continue;
                };
                // `Unit` is an unknown ciphertext (⊥); non-`Message`
                // responses are skipped like the in-process release loop.
                let Some([label, rho_v]) = resp.as_list() else {
                    continue;
                };
                if label.as_str() != Some("Message") {
                    continue;
                }
                let Some(rho) = rho_v.as_bytes() else {
                    continue;
                };
                let Some(FrameKind::RoAnswer(eta)) = link(FrameKind::RoQuery {
                    x: rho.to_vec(),
                    len: y.len() as u64,
                }) else {
                    continue;
                };
                let m_bytes: Vec<u8> = y.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
                out.push(Value::decode(&m_bytes).unwrap_or(Value::Bytes(m_bytes)));
            }
            out.sort();
            return Some(Value::List(out));
        }
        None
    }
}

/// How a [`NetSbcWorld`] builds its transport from the experiment
/// parameters and seed — the type-level knob that lets the same world be
/// a [`LoopbackSbcWorld`] or a [`SimNetSbcWorld`] behind the one
/// `SbcBackend` registration seam.
pub trait NetProfile: Send + std::fmt::Debug + 'static {
    /// Builds the transport for an instance.
    ///
    /// # Errors
    ///
    /// [`SbcError::Backend`] if the transport cannot be brought up — an
    /// in-process transport never fails, but a socket transport's bind or
    /// connect can.
    fn transport(params: &SbcParams, seed: &[u8]) -> Result<Box<dyn Transport>, SbcError>;
}

/// Zero-latency in-order delivery ([`Loopback`]).
#[derive(Debug)]
pub struct LoopbackProfile;

impl NetProfile for LoopbackProfile {
    fn transport(params: &SbcParams, _seed: &[u8]) -> Result<Box<dyn Transport>, SbcError> {
        Ok(Box::new(Loopback::new(params.n, params.delta)))
    }
}

/// The seeded adversarial schedule ([`SimNet`] under
/// [`SimConfig::adversarial`]). The schedule seed is derived from the
/// instance seed with a domain-separation label, *not* drawn from the
/// world's own stream — the experiment's randomness must stay
/// bit-identical to the in-process world's.
#[derive(Debug)]
pub struct AdversarialProfile;

impl NetProfile for AdversarialProfile {
    fn transport(params: &SbcParams, seed: &[u8]) -> Result<Box<dyn Transport>, SbcError> {
        let mut s = seed.to_vec();
        s.extend_from_slice(b"/net-schedule");
        Ok(Box::new(SimNet::new(
            params.n,
            SimConfig::adversarial(params.delta),
            &s,
        )))
    }
}

/// The networked world over the loopback transport — bit-compatible with
/// the in-process delivery path.
pub type LoopbackSbcWorld = NetSbcWorld<LoopbackProfile>;

/// The networked world over the deterministic adversarial [`SimNet`].
pub type SimNetSbcWorld = NetSbcWorld<AdversarialProfile>;

/// The networked Theorem 2 world: an [`SbcBackend`] whose parties speak
/// only [`Frame`]s over a [`Transport`]. Plugs into `SbcSession`/`SbcPool`
/// via `build_backend::<LoopbackSbcWorld>()` (or `SimNetSbcWorld`), and
/// into `PooledSbcWorld` like any other backend.
#[derive(Debug)]
pub struct NetSbcWorld<P: NetProfile = LoopbackProfile> {
    core: WorldCore,
    /// Experiment parameters (exposed for harness introspection).
    pub params: SbcParams,
    parties: Vec<NetParty>,
    ubc: UbcFunc,
    ftle: TleFunc,
    ro: RandomOracle,
    transport: Box<dyn Transport>,
    _profile: PhantomData<P>,
}

impl<P: NetProfile> NetSbcWorld<P> {
    /// Creates the world with the profile's transport.
    ///
    /// # Errors
    ///
    /// [`SbcError::InvalidParams`] if the parameters violate Theorem 2's
    /// constraints; [`SbcError::Backend`] if the profile's transport
    /// cannot be brought up (socket transports only).
    pub fn new(params: SbcParams, seed: &[u8]) -> Result<Self, SbcError> {
        params.validate()?;
        let transport = P::transport(&params, seed)?;
        Self::with_transport(params, seed, transport)
    }

    /// Creates the world over a caller-supplied transport (tests drive
    /// custom [`SimConfig`]s through this).
    ///
    /// # Errors
    ///
    /// [`SbcError::InvalidParams`] if the parameters violate Theorem 2's
    /// constraints.
    pub fn with_transport(
        params: SbcParams,
        seed: &[u8],
        transport: Box<dyn Transport>,
    ) -> Result<Self, SbcError> {
        params.validate()?;
        let mut core = WorldCore::new(params.n, seed);
        // Same forks, same order, as every other Theorem 2 backend.
        let streams = fork_world_streams(&mut core);
        let parties = streams
            .parties
            .into_iter()
            .enumerate()
            .map(|(i, rng)| NetParty::new(i as u32, &params, rng))
            .collect();
        Ok(NetSbcWorld {
            core,
            params,
            parties,
            ubc: UbcFunc::new(params.n, streams.ubc_tags),
            ftle: TleFunc::new(params.tle_alpha, params.tle_delay, streams.tle_tags),
            ro: RandomOracle::new(streams.ro),
            transport,
            _profile: PhantomData,
        })
    }

    /// The transport's delivery counters (the conformance tests and the
    /// bench read these to prove the chaos schedule actually fired).
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Encodes and ships one frame. Send failures are counted by the
    /// transport and otherwise ignored — an adversarial net is allowed to
    /// lose what it cannot parse.
    fn post(&mut self, frame: Frame) {
        let now = self.core.clock.read();
        let _ = self.transport.send(frame.encode(), now);
    }

    /// Runs `f` on party `idx` with a live host link. The party is
    /// checked out of the world for the duration so the link can borrow
    /// the world (transport + functionalities) mutably.
    fn with_party<R>(
        &mut self,
        idx: usize,
        f: impl FnOnce(&mut NetParty, &mut HostLink<'_>) -> R,
    ) -> R {
        let mut party = std::mem::replace(&mut self.parties[idx], NetParty::placeholder());
        let pid = party.id;
        let mut link = |kind: FrameKind| self.host_rpc(pid, kind);
        let r = f(&mut party, &mut link);
        // `link` borrows `self`; shadow it out of scope before the
        // write-back below.
        let _ = &link;
        self.parties[idx] = party;
        r
    }

    /// One request/response exchange with the functionality host, fully
    /// over the wire. The control queue is empty whenever this is called
    /// (the pump buffers its batch before dispatching), so the host inbox
    /// contains exactly this request.
    fn host_rpc(&mut self, from: u32, kind: FrameKind) -> Option<FrameKind> {
        let now = self.core.clock.read();
        self.post(Frame {
            from: Endpoint::Party(from),
            to: Endpoint::Host,
            sent_at: now,
            kind,
        });
        let inbox = self.transport.recv_control();
        let mut responses = Vec::new();
        for bytes in inbox {
            if let Ok(frame) = Frame::decode(&bytes) {
                responses.extend(self.host_handle(frame));
            }
        }
        for r in responses {
            self.post(r);
        }
        let mut out = None;
        for bytes in self.transport.recv_rpc(from) {
            if let Ok(frame) = Frame::decode(&bytes) {
                out = Some(frame.kind);
            }
        }
        out
    }

    /// The functionality host: answers one party request, touching the
    /// hybrid functionalities exactly as the in-process round does.
    fn host_handle(&mut self, frame: Frame) -> Vec<Frame> {
        let now = self.core.clock.read();
        let Endpoint::Party(p) = frame.from else {
            return Vec::new();
        };
        let party = PartyId(p);
        let reply = |kind: FrameKind| Frame {
            from: Endpoint::Host,
            to: Endpoint::Party(p),
            sent_at: now,
            kind,
        };
        match frame.kind {
            FrameKind::Cast(msg) => {
                let mut ctx = self.core.ctx();
                self.ubc.broadcast_honest(party, msg, &mut ctx);
                Vec::new()
            }
            FrameKind::TleEnc { rho, tau } => {
                let mut ctx = self.core.ctx();
                self.ftle.enc(party, rho, tau as i64, &mut ctx);
                Vec::new()
            }
            FrameKind::TleRetrieve => {
                let triples = {
                    let mut ctx = self.core.ctx();
                    self.ftle.retrieve(party, &mut ctx)
                };
                let v = Value::List(
                    triples
                        .into_iter()
                        .map(|(m, c, tau)| Value::list([m, c, Value::U64(tau)]))
                        .collect(),
                );
                vec![reply(FrameKind::TleTriples(v))]
            }
            FrameKind::TleDec { ct, tau } => {
                let resp = {
                    let ctx = self.core.ctx();
                    self.ftle.dec(&ct, tau as i64, &ctx)
                };
                let v = match resp {
                    None => Value::Unit,
                    Some(r) => r.to_value(),
                };
                vec![reply(FrameKind::TleDecResp(v))]
            }
            FrameKind::RoQuery { x, len } => {
                let ans = self.ro.query_bytes(Caller::Party(party), &x, len as usize);
                vec![reply(FrameKind::RoAnswer(ans))]
            }
            _ => Vec::new(),
        }
    }

    /// Drains and dispatches the control plane until quiescent. Batches
    /// are buffered before dispatch so a handler's own RPC round trips
    /// (which drain the control queue themselves) cannot steal queued
    /// deliveries.
    fn pump_control(&mut self) {
        loop {
            let batch = self.transport.recv_control();
            if batch.is_empty() {
                return;
            }
            for bytes in batch {
                let Ok(frame) = Frame::decode(&bytes) else {
                    continue;
                };
                self.dispatch_control(frame);
            }
        }
    }

    fn dispatch_control(&mut self, frame: Frame) {
        let now = self.core.clock.read();
        match frame.to {
            Endpoint::Party(p) if (p as usize) < self.parties.len() => {
                let idx = p as usize;
                match frame.kind {
                    FrameKind::Submit(v) => {
                        self.with_party(idx, |party, link| party.on_submit(v, now, link));
                    }
                    FrameKind::Tick => {
                        let out = self.with_party(idx, |party, link| party.on_tick(now, link));
                        if let Some(v) = out {
                            self.post(Frame {
                                from: Endpoint::Party(p),
                                to: Endpoint::Env,
                                sent_at: now,
                                kind: FrameKind::Output(v),
                            });
                            self.pump_env();
                        }
                    }
                    FrameKind::Deliver { payload, .. } => {
                        self.with_party(idx, |party, link| party.on_deliver(&payload, now, link));
                    }
                    _ => {}
                }
            }
            Endpoint::Host => {
                let responses = self.host_handle(frame);
                for r in responses {
                    self.post(r);
                }
            }
            _ => {}
        }
    }

    /// Routes `Output` frames back to the environment's output buffer.
    fn pump_env(&mut self) {
        for bytes in self.transport.recv_control() {
            let Ok(frame) = Frame::decode(&bytes) else {
                continue;
            };
            if let (Endpoint::Env, Endpoint::Party(p), FrameKind::Output(v)) =
                (frame.to, frame.from, frame.kind)
            {
                self.core
                    .outputs
                    .push((PartyId(p), Command::new("Broadcast", v)));
            }
        }
    }

    /// Ships a batch of UBC deliveries as `Deliver` frames (flush order
    /// preserved; the transport classifies wake-ups as control and wires
    /// as data).
    fn post_deliveries(&mut self, origin: u32, ds: Vec<sbc_uc::hybrid::Delivery>, now: u64) {
        for d in ds {
            self.post(Frame {
                from: Endpoint::Host,
                to: Endpoint::Party(d.to.0),
                sent_at: now,
                kind: FrameKind::Deliver {
                    origin,
                    payload: d.cmd.value,
                },
            });
        }
    }

    /// Delivers the data-plane frames due for one party.
    fn pump_data_for(&mut self, p: u32, now: u64) {
        let batch = self.transport.recv_data(p, now);
        for bytes in batch {
            let Ok(frame) = Frame::decode(&bytes) else {
                continue;
            };
            if let FrameKind::Deliver { payload, .. } = frame.kind {
                // Wire recording is pure — no host link needed.
                self.parties[p as usize].on_wire(&payload, now);
            }
        }
    }

    /// Delivers due data frames to every party (corrupted recipients
    /// included — the in-process world delivers to them too; their state
    /// is just never observable again).
    fn pump_data_all(&mut self, now: u64) {
        for p in 0..self.parties.len() as u32 {
            self.pump_data_for(p, now);
        }
    }
}

impl<P: NetProfile> World for NetSbcWorld<P> {
    fn n(&self) -> usize {
        self.core.n()
    }

    fn time(&self) -> u64 {
        self.core.clock.read()
    }

    fn input(&mut self, party: PartyId, cmd: Command) {
        if cmd.name != "Broadcast" || self.core.corr.is_corrupted(party) {
            return;
        }
        let now = self.core.clock.read();
        self.post(Frame {
            from: Endpoint::Env,
            to: Endpoint::Party(party.0),
            sent_at: now,
            kind: FrameKind::Submit(cmd.value),
        });
        self.pump_control();
    }

    fn advance(&mut self, party: PartyId) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        let now = self.core.clock.read();
        // Due data-plane deliveries land before the round step, so a
        // delayed wire is seen at its scheduled round like the in-process
        // world's in-round delivery.
        self.pump_data_for(party.0, now);
        self.post(Frame {
            from: Endpoint::Env,
            to: Endpoint::Party(party.0),
            sent_at: now,
            kind: FrameKind::Tick,
        });
        self.pump_control();
        // Host side of the tick: flush this party's UBC pending.
        let ds = {
            let mut ctx = self.core.ctx();
            self.ubc.advance_clock(party, &mut ctx)
        };
        self.post_deliveries(party.0, ds, now);
        self.pump_control();
        self.pump_data_all(now);
        self.core.clock.advance_party(party);
    }

    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        match cmd {
            AdvCommand::Corrupt(p) => {
                if !self.core.corrupt(p) {
                    return Value::Bool(false);
                }
                self.transport.set_corrupted(p.0);
                Value::List(self.parties[p.index()].pending_messages())
            }
            AdvCommand::SendAs { party, cmd } if cmd.name == "Broadcast" => {
                if self.core.corr.is_corrupted(party) {
                    let now = self.core.clock.read();
                    let ds = {
                        let mut ctx = self.core.ctx();
                        self.ubc.broadcast_corrupted(party, cmd.value, &mut ctx)
                    };
                    self.post_deliveries(party.0, ds, now);
                    self.pump_control();
                    self.pump_data_all(now);
                }
                Value::Unit
            }
            AdvCommand::Control { target, cmd } => match (target.as_str(), cmd.name.as_str()) {
                ("F_TLE", "Insert") => {
                    let Some(items) = cmd.value.as_list() else {
                        return Value::Unit;
                    };
                    if items.len() == 3 {
                        if let (Some(_), Some(_), Some(tau)) =
                            (items[0].as_bytes(), items[1].as_bytes(), items[2].as_u64())
                        {
                            self.ftle
                                .insert_adversarial(items[0].clone(), items[1].clone(), tau);
                            return Value::Bool(true);
                        }
                    }
                    Value::Unit
                }
                ("F_TLE", "Leakage") => {
                    let recs = {
                        let ctx = self.core.ctx();
                        self.ftle.leakage(&ctx)
                    };
                    Value::List(
                        recs.into_iter()
                            .map(|r| {
                                Value::list([r.msg, r.ct.unwrap_or(Value::Unit), Value::U64(r.tau)])
                            })
                            .collect(),
                    )
                }
                ("F_RO", "QueryBytes") => {
                    let Some(items) = cmd.value.as_list() else {
                        return Value::Unit;
                    };
                    if items.len() == 2 {
                        if let (Some(x), Some(len)) = (items[0].as_bytes(), items[1].as_u64()) {
                            return Value::Bytes(self.ro.query_bytes(
                                Caller::Adversary,
                                x,
                                len as usize,
                            ));
                        }
                    }
                    Value::Unit
                }
                _ => Value::Unit,
            },
            _ => Value::Unit,
        }
    }

    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        std::mem::take(&mut self.core.outputs)
    }

    fn drain_leaks(&mut self) -> Vec<Leak> {
        std::mem::take(&mut self.core.leaks)
    }

    fn is_corrupted(&self, party: PartyId) -> bool {
        self.core.corr.is_corrupted(party)
    }
}

impl<P: NetProfile> SbcWorld for NetSbcWorld<P> {
    /// Period turnover: parties forget their period state, undelivered
    /// UBC messages are dropped, released `F_TLE` records pruned — and
    /// the transport's in-flight frames flushed, the networked image of
    /// the in-process `clear_pending`.
    fn begin_new_period(&mut self) {
        for p in &mut self.parties {
            p.reset_period();
        }
        self.ubc.clear_pending();
        self.ftle.clear_records();
        self.transport.clear_in_flight();
    }

    fn release_round(&self) -> Option<u64> {
        self.parties.iter().find_map(|p| p.tau_rel())
    }

    fn period_end(&self) -> Option<u64> {
        self.parties.iter().find_map(|p| p.t_end())
    }

    /// O(1) join when verifiably idle — including an idle *network*: a
    /// frame still in flight means an idle round is not a pure clock tick.
    fn join_at(&mut self, round: u64) {
        let idle = self.parties.iter().all(|p| p.is_idle())
            && self.ubc.pending().is_empty()
            && self.transport.idle()
            && !self.core.clock.mid_round();
        if idle {
            self.core.clock.fast_forward(round);
        } else {
            sbc_uc::exec::replay_join(self, round);
        }
    }
}

impl<P: NetProfile> SbcBackend for NetSbcWorld<P> {
    fn from_params(params: SbcParams, seed: &[u8]) -> Result<Self, SbcError> {
        NetSbcWorld::new(params, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_world_runs_a_period_end_to_end() {
        let params = SbcParams::default_for(3);
        let mut w = LoopbackSbcWorld::new(params, b"net-seed").expect("valid params");
        w.input(PartyId(0), Command::new("Broadcast", Value::bytes(b"m0")));
        for _ in 0..(params.phi + params.delta + 2) {
            w.tick();
        }
        let outs = w.drain_outputs();
        assert_eq!(outs.len(), 3, "every party outputs at τ_rel");
        for (_, cmd) in &outs {
            assert_eq!(cmd.value.as_list().map(<[Value]>::len), Some(1));
        }
        // Everything that moved, moved as frames.
        let stats = w.transport_stats();
        assert!(stats.sent > 0 && stats.delivered > 0 && stats.bytes > 0);
        assert_eq!(stats.decode_errors, 0);
    }

    #[test]
    fn simnet_world_same_outputs_as_loopback() {
        let params = SbcParams::default_for(4);
        let run = |mut w: Box<dyn FnMut() -> Vec<(PartyId, Command)>>| w();
        let mut loopback = LoopbackSbcWorld::new(params, b"seed-x").expect("valid");
        let mut simnet = SimNetSbcWorld::new(params, b"seed-x").expect("valid");
        let drive = |w: &mut dyn SbcWorld| {
            w.input(PartyId(0), Command::new("Broadcast", Value::bytes(b"a")));
            w.tick();
            w.input(PartyId(1), Command::new("Broadcast", Value::bytes(b"b")));
            w.input(PartyId(2), Command::new("Broadcast", Value::bytes(b"c")));
            for _ in 0..(params.phi + params.delta + 2) {
                w.tick();
            }
            w.drain_outputs()
        };
        let a = drive(&mut loopback);
        let b = drive(&mut simnet);
        assert_eq!(a, b);
        let _ = run;
        let s = simnet.transport_stats();
        assert!(s.delayed > 0 || s.duplicated > 0, "chaos fired: {s:?}");
    }
}
