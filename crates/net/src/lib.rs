//! # sbc-net
//!
//! The networked execution backend for the SBC stack: parties as isolated
//! state machines that speak only length-prefixed [`codec::Frame`]s over a
//! [`transport::Transport`], instead of calling the hybrid functionalities
//! in-process.
//!
//! Three layers:
//!
//! * [`codec`] — the versioned wire format. Every protocol message that
//!   crosses a party boundary (submissions, clock ticks, UBC casts and
//!   deliveries, `F_TLE` encrypt/retrieve/decrypt exchanges, `F_RO`
//!   queries, release outputs) has a [`codec::Frame`] encoding. The
//!   decoder treats its input as hostile: every malformed frame comes
//!   back as a typed [`codec::CodecError`], never a panic.
//! * [`transport`] — the delivery seam. [`transport::Loopback`] is the
//!   bit-compatible stand-in for today's in-process delivery;
//!   [`transport::SimNet`] is a deterministic, seeded adversarial
//!   network injecting per-link latency (within ∆), reorder,
//!   duplication, drops from corrupted senders, and transient partitions
//!   that heal before the release round.
//! * [`world`] — [`world::NetSbcWorld`], an
//!   [`SbcBackend`](sbc_core::worlds::SbcBackend) that plugs into
//!   `SbcSession`/`SbcPool` through the existing builder seams and is
//!   held to `CompareLevel::Exact` transcript equality against
//!   `RealSbcWorld` (the conformance tests and the `sbc_net` bench gate
//!   on it).
//! * [`tcp`] — the same seam over real sockets: [`tcp::TcpTransport`]
//!   carries every frame across the OS loopback stack (one `std::net`
//!   connection per link, no async runtime), with read/write deadlines
//!   derived from ∆ and per-link reconnect with capped backoff, so a
//!   dropped or silent connection degrades to a typed [`codec::NetError`]
//!   instead of hanging the clock. [`tcp::TcpSbcWorld`] is held to the
//!   same `Exact` gate as the in-process transports.
//!
//! The headline invariant: the network may delay, reorder and duplicate,
//! but it must not change what the protocol decides or leaks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod tcp;
pub mod transport;
pub mod world;

pub use codec::{
    decode_snapshot_stream, encode_snapshot_stream, read_snapshot_stream, write_snapshot_stream,
    CodecError, Endpoint, Frame, FrameKind, NetError, SnapshotStream, SnapshotStreamError,
    SNAPSHOT_CHUNK_BYTES, SNAPSHOT_STREAM_VERSION,
};
pub use tcp::{TcpConfig, TcpFaultHandle, TcpHarness, TcpProfile, TcpSbcWorld, TcpTransport};
pub use transport::{Loopback, SimConfig, SimNet, Transport, TransportStats};
pub use world::{
    AdversarialProfile, LoopbackProfile, LoopbackSbcWorld, NetSbcWorld, SimNetSbcWorld,
};
