//! # sbc-primitives
//!
//! From-scratch cryptographic substrate for the `sbc` workspace — the
//! reproduction of *"Universally Composable Simultaneous Broadcast against a
//! Dishonest Majority and Applications"* (PODC 2023).
//!
//! Everything here is implemented directly on top of the Rust standard
//! library (no external crypto crates):
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, the workspace's single hash function.
//! * [`hmac`] — HMAC-SHA-256.
//! * [`drbg`] — deterministic HMAC-DRBG; all protocol randomness flows
//!   through it so executions are reproducible from a seed.
//! * [`ske`] — the symmetric scheme Σ_SKE used inside Astrolabous.
//! * [`hashchain`] / [`astrolabous`] — sequential hash-chain puzzles and the
//!   Astrolabous TLE scheme built on them.
//! * [`bigint`] / [`prime`] / [`group`] — 256-bit modular arithmetic,
//!   Miller–Rabin, and Schnorr groups for the voting application.
//! * [`sigma`] — Schnorr / Chaum–Pedersen / disjunctive Σ-protocols with
//!   Fiat–Shamir (ballot validity proofs).
//! * [`merkle`] / [`wots`] — Merkle trees and WOTS-based stateful hash
//!   signatures (the EUF-CMA scheme realizing `F_cert`).
//! * [`hex`] — encoding helpers.
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::{drbg::Drbg, sha256::Sha256, hashchain};
//!
//! // A 3-step sequential puzzle hiding a payload:
//! let h = |x: &[u8]| Sha256::digest(x);
//! let mut rng = Drbg::from_seed(b"crate-docs");
//! let rs: Vec<[u8; 32]> = (0..3)
//!     .map(|_| {
//!         let mut r = [0u8; 32];
//!         r.copy_from_slice(&rng.gen_bytes(32));
//!         r
//!     })
//!     .collect();
//! let chain = hashchain::chain_encode(&h, &rs, &[42u8; 32]);
//! let (payload, _witness) = hashchain::chain_solve(&h, &chain).unwrap();
//! assert_eq!(payload, [42u8; 32]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astrolabous;
pub mod bigint;
pub mod drbg;
pub mod group;
pub mod hashchain;
pub mod hex;
pub mod hmac;
pub mod merkle;
pub mod prime;
pub mod sha256;
pub mod sigma;
pub mod ske;
pub mod wots;
