//! Stateful hash-based signatures: WOTS (Winternitz one-time signatures)
//! certified under a Merkle tree — a from-scratch EUF-CMA scheme realizing
//! the signing machinery behind `F_cert` (paper Fig. 4 / Fact 1).
//!
//! A [`SigningKey`] holds `2^height` one-time keys; each [`sign`] consumes
//! the next leaf. Security rests only on SHA-256, matching the paper's
//! hash-centric resource model.
//!
//! [`sign`]: SigningKey::sign
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::wots::SigningKey;
//! use sbc_primitives::drbg::Drbg;
//!
//! let mut rng = Drbg::from_seed(b"doc");
//! let mut sk = SigningKey::generate(4, &mut rng); // 16 signatures
//! let vk = sk.verification_key();
//! let sig = sk.sign(b"hello").unwrap();
//! assert!(vk.verify(b"hello", &sig));
//! assert!(!vk.verify(b"other", &sig));
//! ```

use crate::drbg::Drbg;
use crate::merkle::{MerkleProof, MerkleTree, Node};
use crate::sha256::Sha256;
use std::fmt;

/// Winternitz parameter w = 16 (4 bits per chain).
const W_BITS: u32 = 4;
const W: u32 = 1 << W_BITS;
/// Number of message chains for a 256-bit digest: 256 / 4.
const MSG_CHAINS: usize = 64;
/// Number of checksum chains: checksum max = 64·15 = 960 < 16³.
const CSUM_CHAINS: usize = 3;
/// Total chains per one-time key.
const CHAINS: usize = MSG_CHAINS + CSUM_CHAINS;

fn chain_step(seed: &[u8; 32], pos: usize, step: u32, value: &[u8; 32]) -> [u8; 32] {
    Sha256::digest_parts(&[
        b"wots-chain",
        seed,
        &(pos as u64).to_be_bytes(),
        &step.to_be_bytes(),
        value,
    ])
}

fn apply_chain(seed: &[u8; 32], pos: usize, start: u32, steps: u32, value: &[u8; 32]) -> [u8; 32] {
    let mut v = *value;
    for s in start..start + steps {
        v = chain_step(seed, pos, s, &v);
    }
    v
}

/// Digits (base-w) of the message digest plus checksum digits.
fn digits(message: &[u8]) -> Vec<u8> {
    let digest = Sha256::digest_parts(&[b"wots-msg", message]);
    let mut out = Vec::with_capacity(CHAINS);
    for byte in digest.iter() {
        out.push(byte >> 4);
        out.push(byte & 0x0f);
    }
    debug_assert_eq!(out.len(), MSG_CHAINS);
    let csum: u32 = out.iter().map(|&d| (W - 1) - d as u32).sum();
    out.push(((csum >> 8) & 0x0f) as u8);
    out.push(((csum >> 4) & 0x0f) as u8);
    out.push((csum & 0x0f) as u8);
    debug_assert_eq!(out.len(), CHAINS);
    out
}

/// One-time public key = hash of all chain tops.
fn ots_public(seed: &[u8; 32], secrets: &[[u8; 32]; CHAINS]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"wots-pk");
    for (pos, sk) in secrets.iter().enumerate() {
        let top = apply_chain(seed, pos, 0, W - 1, sk);
        h.update(&top);
    }
    h.finalize()
}

/// A WOTS signature together with its Merkle certification path.
#[derive(Clone, PartialEq, Eq)]
pub struct Signature {
    /// Index of the one-time key used.
    pub leaf_index: u32,
    /// The per-chain intermediate values.
    chain_values: Vec<[u8; 32]>,
    /// Merkle path certifying the one-time public key.
    auth_path: MerkleProof,
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature(leaf={}, {} chains)",
            self.leaf_index,
            self.chain_values.len()
        )
    }
}

impl Signature {
    /// Serialized size in bytes (for cost accounting in benchmarks).
    pub fn size_bytes(&self) -> usize {
        4 + self.chain_values.len() * 32 + self.auth_path.len() * 32
    }

    /// The raw components `(chain_values, auth_path)`, for serialization.
    pub fn parts(&self) -> (Vec<[u8; 32]>, Vec<[u8; 32]>) {
        (self.chain_values.clone(), self.auth_path.clone())
    }

    /// Rebuilds a signature from its serialized components.
    pub fn from_parts(
        leaf_index: u32,
        chain_values: Vec<[u8; 32]>,
        auth_path: Vec<[u8; 32]>,
    ) -> Self {
        Signature {
            leaf_index,
            chain_values,
            auth_path,
        }
    }
}

/// Public verification key: the Merkle root over all one-time public keys.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerificationKey {
    root: Node,
    /// Public chain-tweak seed.
    seed: [u8; 32],
    capacity: u32,
}

impl fmt::Debug for VerificationKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VerificationKey({}…)",
            crate::hex::encode(&self.root[..4])
        )
    }
}

impl VerificationKey {
    /// Verifies `signature` on `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        if signature.leaf_index >= self.capacity || signature.chain_values.len() != CHAINS {
            return false;
        }
        let ds = digits(message);
        let mut h = Sha256::new();
        h.update(b"wots-pk");
        for (pos, (d, v)) in ds.iter().zip(signature.chain_values.iter()).enumerate() {
            let top = apply_chain(&self.seed, pos, *d as u32, (W - 1) - *d as u32, v);
            h.update(&top);
        }
        let ots_pk = h.finalize();
        MerkleTree::verify(
            &self.root,
            &ots_pk,
            signature.leaf_index as usize,
            &signature.auth_path,
            self.capacity as usize,
        )
    }
}

/// Error returned when a signing key has exhausted its one-time keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyExhausted;

impl fmt::Display for KeyExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all one-time keys of this signing key have been used")
    }
}

impl std::error::Error for KeyExhausted {}

/// Stateful many-time signing key (2^height one-time keys).
#[derive(Clone)]
pub struct SigningKey {
    master: [u8; 32],
    seed: [u8; 32],
    tree: MerkleTree,
    next_leaf: u32,
    capacity: u32,
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SigningKey(used {}/{})", self.next_leaf, self.capacity)
    }
}

impl SigningKey {
    /// Generates a key with `2^height` one-time keys.
    ///
    /// # Panics
    ///
    /// Panics if `height > 16` (key generation cost is 2^height · ~1k
    /// hashes; callers wanting more signatures should rotate keys).
    pub fn generate(height: u32, rng: &mut Drbg) -> Self {
        assert!(height <= 16, "tree height too large");
        let capacity = 1u32 << height;
        let mut master = [0u8; 32];
        master.copy_from_slice(&rng.gen_bytes(32));
        let mut seed = [0u8; 32];
        seed.copy_from_slice(&rng.gen_bytes(32));
        let leaves: Vec<[u8; 32]> = (0..capacity)
            .map(|leaf| {
                let secrets = Self::leaf_secrets(&master, leaf);
                ots_public(&seed, &secrets)
            })
            .collect();
        let tree = MerkleTree::build(&leaves);
        SigningKey {
            master,
            seed,
            tree,
            next_leaf: 0,
            capacity,
        }
    }

    fn leaf_secrets(master: &[u8; 32], leaf: u32) -> [[u8; 32]; CHAINS] {
        let mut out = [[0u8; 32]; CHAINS];
        for (pos, slot) in out.iter_mut().enumerate() {
            *slot = Sha256::digest_parts(&[
                b"wots-sk",
                master,
                &leaf.to_be_bytes(),
                &(pos as u64).to_be_bytes(),
            ]);
        }
        out
    }

    /// The matching verification key.
    pub fn verification_key(&self) -> VerificationKey {
        VerificationKey {
            root: self.tree.root(),
            seed: self.seed,
            capacity: self.capacity,
        }
    }

    /// Remaining signature capacity.
    pub fn remaining(&self) -> u32 {
        self.capacity - self.next_leaf
    }

    /// Signs `message`, consuming one one-time key.
    ///
    /// # Errors
    ///
    /// Returns [`KeyExhausted`] once all `2^height` one-time keys are spent.
    pub fn sign(&mut self, message: &[u8]) -> Result<Signature, KeyExhausted> {
        if self.next_leaf >= self.capacity {
            return Err(KeyExhausted);
        }
        let leaf = self.next_leaf;
        self.next_leaf += 1;
        let secrets = Self::leaf_secrets(&self.master, leaf);
        let ds = digits(message);
        let chain_values: Vec<[u8; 32]> = ds
            .iter()
            .enumerate()
            .map(|(pos, &d)| apply_chain(&self.seed, pos, 0, d as u32, &secrets[pos]))
            .collect();
        let auth_path = self.tree.prove(leaf as usize);
        Ok(Signature {
            leaf_index: leaf,
            chain_values,
            auth_path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(height: u32) -> SigningKey {
        let mut rng = Drbg::from_seed(b"wots-tests");
        SigningKey::generate(height, &mut rng)
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut sk = key(3);
        let vk = sk.verification_key();
        for i in 0..8u32 {
            let msg = format!("message {i}");
            let sig = sk.sign(msg.as_bytes()).unwrap();
            assert!(vk.verify(msg.as_bytes(), &sig), "i={i}");
        }
    }

    #[test]
    fn exhaustion() {
        let mut sk = key(1);
        assert_eq!(sk.remaining(), 2);
        sk.sign(b"a").unwrap();
        sk.sign(b"b").unwrap();
        assert_eq!(sk.sign(b"c"), Err(KeyExhausted));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut sk = key(2);
        let vk = sk.verification_key();
        let sig = sk.sign(b"original").unwrap();
        assert!(!vk.verify(b"forged", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut sk1 = key(2);
        let mut rng = Drbg::from_seed(b"other");
        let sk2 = SigningKey::generate(2, &mut rng);
        let sig = sk1.sign(b"msg").unwrap();
        assert!(!sk2.verification_key().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut sk = key(2);
        let vk = sk.verification_key();
        let sig = sk.sign(b"msg").unwrap();
        let mut bad = sig.clone();
        bad.chain_values[10][0] ^= 1;
        assert!(!vk.verify(b"msg", &bad));
        let mut bad2 = sig.clone();
        bad2.auth_path[0][0] ^= 1;
        assert!(!vk.verify(b"msg", &bad2));
        let mut bad3 = sig;
        bad3.leaf_index = 99;
        assert!(!vk.verify(b"msg", &bad3));
    }

    #[test]
    fn signature_not_valid_for_other_leaf_index() {
        let mut sk = key(2);
        let vk = sk.verification_key();
        let sig = sk.sign(b"msg").unwrap();
        let mut moved = sig;
        moved.leaf_index = 1; // signed with leaf 0
        assert!(!vk.verify(b"msg", &moved));
    }

    #[test]
    fn deterministic_generation() {
        let mut r1 = Drbg::from_seed(b"same");
        let mut r2 = Drbg::from_seed(b"same");
        let k1 = SigningKey::generate(2, &mut r1);
        let k2 = SigningKey::generate(2, &mut r2);
        assert_eq!(k1.verification_key(), k2.verification_key());
    }

    #[test]
    fn signature_size_reported() {
        let mut sk = key(3);
        let sig = sk.sign(b"m").unwrap();
        assert_eq!(sig.size_bytes(), 4 + 67 * 32 + 3 * 32);
    }
}
