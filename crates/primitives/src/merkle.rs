//! Merkle trees over SHA-256, used to certify the many one-time WOTS+ keys
//! of the stateful signature scheme.
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::merkle::MerkleTree;
//!
//! let leaves: Vec<Vec<u8>> = (0u8..8).map(|i| vec![i]).collect();
//! let tree = MerkleTree::build(&leaves);
//! let proof = tree.prove(3);
//! assert!(MerkleTree::verify(&tree.root(), &leaves[3], 3, &proof, 8));
//! ```

use crate::sha256::Sha256;

/// A 32-byte Merkle node hash.
pub type Node = [u8; 32];

fn leaf_hash(data: &[u8]) -> Node {
    Sha256::digest_parts(&[b"leaf", data])
}

fn inner_hash(l: &Node, r: &Node) -> Node {
    Sha256::digest_parts(&[b"node", l, r])
}

/// A complete Merkle tree (leaf count padded to a power of two with empty
/// leaves).
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, last level = [root].
    levels: Vec<Vec<Node>>,
    leaf_count: usize,
}

/// An authentication path (siblings bottom-up).
pub type MerkleProof = Vec<Node>;

impl MerkleTree {
    /// Builds a tree over `leaves` (raw byte strings; hashed internally).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let leaf_count = leaves.len();
        let width = leaf_count.next_power_of_two();
        let mut level: Vec<Node> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
        level.resize(width, leaf_hash(b""));
        let mut levels = vec![level];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let next: Vec<Node> = prev
                .chunks_exact(2)
                .map(|pair| inner_hash(&pair[0], &pair[1]))
                .collect();
            levels.push(next);
        }
        MerkleTree { levels, leaf_count }
    }

    /// The tree root.
    pub fn root(&self) -> Node {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of real (unpadded) leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Authentication path for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= leaf_count()`.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count, "leaf index out of range");
        let mut proof = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            proof.push(level[idx ^ 1]);
            idx >>= 1;
        }
        proof
    }

    /// Verifies that `leaf_data` is the `index`-th of `total` leaves under
    /// `root`, given the authentication `proof`.
    pub fn verify(
        root: &Node,
        leaf_data: &[u8],
        index: usize,
        proof: &MerkleProof,
        total: usize,
    ) -> bool {
        if total == 0 || index >= total {
            return false;
        }
        let depth = total.next_power_of_two().trailing_zeros() as usize;
        if proof.len() != depth {
            return false;
        }
        let mut node = leaf_hash(leaf_data);
        let mut idx = index;
        for sibling in proof {
            node = if idx & 1 == 0 {
                inner_hash(&node, sibling)
            } else {
                inner_hash(sibling, &node)
            };
            idx >>= 1;
        }
        &node == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn all_leaves_provable() {
        for n in [1usize, 2, 3, 4, 5, 8, 9, 16, 33] {
            let ls = leaves(n);
            let tree = MerkleTree::build(&ls);
            for (i, leaf) in ls.iter().enumerate() {
                let proof = tree.prove(i);
                assert!(
                    MerkleTree::verify(&tree.root(), leaf, i, &proof, n),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn wrong_leaf_rejected() {
        let ls = leaves(8);
        let tree = MerkleTree::build(&ls);
        let proof = tree.prove(2);
        assert!(!MerkleTree::verify(
            &tree.root(),
            b"not-the-leaf",
            2,
            &proof,
            8
        ));
    }

    #[test]
    fn wrong_index_rejected() {
        let ls = leaves(8);
        let tree = MerkleTree::build(&ls);
        let proof = tree.prove(2);
        assert!(!MerkleTree::verify(&tree.root(), &ls[2], 3, &proof, 8));
        assert!(!MerkleTree::verify(&tree.root(), &ls[2], 9, &proof, 8));
    }

    #[test]
    fn tampered_proof_rejected() {
        let ls = leaves(8);
        let tree = MerkleTree::build(&ls);
        let mut proof = tree.prove(5);
        proof[1][0] ^= 1;
        assert!(!MerkleTree::verify(&tree.root(), &ls[5], 5, &proof, 8));
    }

    #[test]
    fn wrong_proof_length_rejected() {
        let ls = leaves(8);
        let tree = MerkleTree::build(&ls);
        let mut proof = tree.prove(5);
        proof.pop();
        assert!(!MerkleTree::verify(&tree.root(), &ls[5], 5, &proof, 8));
    }

    #[test]
    fn distinct_trees_distinct_roots() {
        let t1 = MerkleTree::build(&leaves(4));
        let mut ls = leaves(4);
        ls[0][0] ^= 1;
        let t2 = MerkleTree::build(&ls);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn single_leaf_tree() {
        let ls = leaves(1);
        let tree = MerkleTree::build(&ls);
        let proof = tree.prove(0);
        assert!(proof.is_empty());
        assert!(MerkleTree::verify(&tree.root(), &ls[0], 0, &proof, 1));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        MerkleTree::build::<Vec<u8>>(&[]);
    }
}
