//! Deterministic random bit generator (HMAC-DRBG, NIST SP 800-90A style).
//!
//! All protocol-internal randomness in the workspace flows through this DRBG
//! so that executions are reproducible from a seed — which is what makes the
//! real-vs-ideal indistinguishability experiments exact rather than flaky.
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::drbg::Drbg;
//!
//! let mut a = Drbg::from_seed(b"seed");
//! let mut b = Drbg::from_seed(b"seed");
//! assert_eq!(a.gen_bytes(16), b.gen_bytes(16));
//! ```

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// Deterministic HMAC-SHA-256 based random generator.
#[derive(Clone, Debug)]
pub struct Drbg {
    key: [u8; DIGEST_LEN],
    value: [u8; DIGEST_LEN],
}

impl Drbg {
    /// Instantiates the DRBG from arbitrary seed material.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut drbg = Drbg {
            key: [0u8; DIGEST_LEN],
            value: [1u8; DIGEST_LEN],
        };
        drbg.reseed(seed);
        drbg
    }

    /// Derives an independent child generator labelled by `label`.
    ///
    /// Children with distinct labels produce independent streams; this is how
    /// per-party and per-functionality randomness is separated from one
    /// master experiment seed.
    pub fn fork(&mut self, label: &[u8]) -> Drbg {
        let mut material = self.gen_bytes(DIGEST_LEN);
        material.extend_from_slice(label);
        Drbg::from_seed(&material)
    }

    /// Mixes additional entropy/seed material into the state.
    pub fn reseed(&mut self, data: &[u8]) {
        // K = HMAC(K, V || 0x00 || data); V = HMAC(K, V)
        let mut m = self.value.to_vec();
        m.push(0x00);
        m.extend_from_slice(data);
        self.key = hmac_sha256(&self.key, &m);
        self.value = hmac_sha256(&self.key, &self.value);
        if !data.is_empty() {
            let mut m2 = self.value.to_vec();
            m2.push(0x01);
            m2.extend_from_slice(data);
            self.key = hmac_sha256(&self.key, &m2);
            self.value = hmac_sha256(&self.key, &self.value);
        }
    }

    /// Generates `n` pseudorandom bytes.
    pub fn gen_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            self.value = hmac_sha256(&self.key, &self.value);
            let take = (n - out.len()).min(DIGEST_LEN);
            out.extend_from_slice(&self.value[..take]);
        }
        // Update key so state does not repeat across calls.
        let mut m = self.value.to_vec();
        m.push(0x00);
        self.key = hmac_sha256(&self.key, &m);
        self.value = hmac_sha256(&self.key, &self.value);
        out
    }

    /// Generates a uniform `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        let b = self.gen_bytes(8);
        u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Generates a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.gen_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Generates a uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.gen_bytes(1)[0] & 1 == 1
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Drbg::from_seed(b"x");
        let mut b = Drbg::from_seed(b"x");
        assert_eq!(a.gen_bytes(100), b.gen_bytes(100));
        assert_eq!(a.gen_u64(), b.gen_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Drbg::from_seed(b"x");
        let mut b = Drbg::from_seed(b"y");
        assert_ne!(a.gen_bytes(32), b.gen_bytes(32));
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = Drbg::from_seed(b"root");
        let mut root2 = Drbg::from_seed(b"root");
        let mut c1 = root1.fork(b"child-a");
        let mut c2 = root2.fork(b"child-a");
        assert_eq!(c1.gen_bytes(32), c2.gen_bytes(32));
        let mut c3 = root1.fork(b"child-b");
        assert_ne!(c1.gen_bytes(32), c3.gen_bytes(32));
    }

    #[test]
    fn consecutive_outputs_differ() {
        let mut d = Drbg::from_seed(b"s");
        assert_ne!(d.gen_bytes(32), d.gen_bytes(32));
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut d = Drbg::from_seed(b"s");
        for _ in 0..1000 {
            assert!(d.gen_range(7) < 7);
        }
        assert_eq!(d.gen_range(1), 0);
    }

    #[test]
    fn gen_range_covers_values() {
        let mut d = Drbg::from_seed(b"s");
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[d.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut d = Drbg::from_seed(b"s");
        let mut v: Vec<u32> = (0..50).collect();
        d.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        Drbg::from_seed(b"s").gen_range(0);
    }
}
