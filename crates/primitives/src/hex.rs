//! Minimal hexadecimal encoding/decoding.
//!
//! # Examples
//!
//! ```
//! let bytes = sbc_primitives::hex::decode("00ff10").unwrap();
//! assert_eq!(bytes, vec![0x00, 0xff, 0x10]);
//! assert_eq!(sbc_primitives::hex::encode(&bytes), "00ff10");
//! ```

use std::fmt;

/// Error returned by [`decode`] on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeHexError {
    kind: DecodeHexErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum DecodeHexErrorKind {
    OddLength(usize),
    InvalidDigit(char),
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DecodeHexErrorKind::OddLength(n) => write!(f, "odd hex string length {n}"),
            DecodeHexErrorKind::InvalidDigit(c) => write!(f, "invalid hex digit {c:?}"),
        }
    }
}

impl std::error::Error for DecodeHexError {}

/// Encodes `bytes` as a lowercase hex string.
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

/// Decodes a hex string (upper or lower case) into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError`] if the input has odd length or contains a
/// non-hex character.
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError {
            kind: DecodeHexErrorKind::OddLength(s.len()),
        });
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let chars: Vec<char> = s.chars().collect();
    for pair in chars.chunks_exact(2) {
        let hi = pair[0].to_digit(16).ok_or(DecodeHexError {
            kind: DecodeHexErrorKind::InvalidDigit(pair[0]),
        })?;
        let lo = pair[1].to_digit(16).ok_or(DecodeHexError {
            kind: DecodeHexErrorKind::InvalidDigit(pair[1]),
        })?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn odd_length_rejected() {
        assert!(decode("abc").is_err());
    }

    #[test]
    fn invalid_digit_rejected() {
        assert!(decode("zz").is_err());
    }
}
