//! The Astrolabous time-lock encryption scheme (paper §2.4, from \[ALZ21]).
//!
//! `AST.Enc(M, τ_dec)` hides a symmetric key `k` at the end of a hash chain
//! of length `q·τ_dec` and encrypts `M` under `k`; `AST.Dec` requires the
//! decryption witness `(H(r_0), …, H(r_{qτ−1}))`, computable only by
//! `q·τ_dec` *sequential* hash queries. Metered at `q` query batches per
//! round by the `W_q` wrapper, opening takes exactly `τ_dec` rounds.
//!
//! The hash is supplied as a closure so the same code runs over a plain
//! hash, the ideal `F*_RO`, or the metered wrapper.
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::astrolabous::{ast_enc, ast_solve_and_dec};
//! use sbc_primitives::drbg::Drbg;
//! use sbc_primitives::sha256::Sha256;
//!
//! let h = |x: &[u8]| Sha256::digest(x);
//! let mut rng = Drbg::from_seed(b"doc");
//! let ct = ast_enc(&h, b"message", 2, 3, &mut rng); // τ_dec = 2, q = 3
//! assert_eq!(ast_solve_and_dec(&h, &ct).unwrap(), b"message");
//! ```

use crate::drbg::Drbg;
use crate::hashchain::{self, ChainSolver, Element};
use crate::sha256::Sha256;
use crate::ske::{self, SkeKey};
use std::fmt;

/// An Astrolabous ciphertext `c = (τ_dec, c_{M,k}, c_{k,τ_dec})`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AstCiphertext {
    /// Time-lock difficulty in rounds.
    pub tau_dec: u64,
    /// `c_{M,k}`: the SKE encryption of the message under `k`.
    pub ske_ct: Vec<u8>,
    /// `c_{k,τ_dec}`: the hash chain hiding `k` (length `q·τ_dec + 1`).
    pub chain: Vec<Element>,
}

impl fmt::Debug for AstCiphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AstCiphertext(τ={}, |ske|={}B, chain={} links)",
            self.tau_dec,
            self.ske_ct.len(),
            self.chain.len()
        )
    }
}

/// Error returned when decryption fails (bad witness, tampered ciphertext).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstDecryptError;

impl fmt::Display for AstDecryptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Astrolabous decryption failed")
    }
}

impl std::error::Error for AstDecryptError {}

impl AstCiphertext {
    /// Number of sequential hash queries required to open.
    pub fn solve_steps(&self) -> usize {
        self.chain.len().saturating_sub(1)
    }

    /// Serializes to a byte string.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 + self.ske_ct.len() + 8 + self.chain.len() * 32);
        out.extend_from_slice(&self.tau_dec.to_be_bytes());
        out.extend_from_slice(&(self.ske_ct.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.ske_ct);
        out.extend_from_slice(&(self.chain.len() as u64).to_be_bytes());
        for e in &self.chain {
            out.extend_from_slice(e);
        }
        out
    }

    /// Parses a serialized ciphertext.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let read_u64 = |b: &[u8], pos: &mut usize| -> Option<u64> {
            let v = u64::from_be_bytes(b.get(*pos..*pos + 8)?.try_into().ok()?);
            *pos += 8;
            Some(v)
        };
        let mut pos = 0usize;
        let tau_dec = read_u64(bytes, &mut pos)?;
        let ske_len = read_u64(bytes, &mut pos)? as usize;
        if ske_len > bytes.len() {
            return None;
        }
        let ske_ct = bytes.get(pos..pos + ske_len)?.to_vec();
        pos += ske_len;
        let chain_len = read_u64(bytes, &mut pos)? as usize;
        if chain_len > bytes.len() / 32 + 1 {
            return None;
        }
        let mut chain = Vec::with_capacity(chain_len);
        for _ in 0..chain_len {
            let e: Element = bytes.get(pos..pos + 32)?.try_into().ok()?;
            chain.push(e);
            pos += 32;
        }
        if pos != bytes.len() || chain.len() < 2 {
            return None;
        }
        Some(AstCiphertext {
            tau_dec,
            ske_ct,
            chain,
        })
    }
}

/// Samples the chain randomness `r_0‖…‖r_{qτ−1}` (step 3 of `AST.Enc`).
pub fn sample_chain_randomness(tau_dec: u64, q: u32, rng: &mut Drbg) -> Vec<Element> {
    let len = (tau_dec * q as u64) as usize;
    (0..len)
        .map(|_| {
            let b = rng.gen_bytes(32);
            let mut e = [0u8; 32];
            e.copy_from_slice(&b);
            e
        })
        .collect()
}

/// `AST.Enc`: encrypts `msg` with time-lock difficulty `tau_dec` rounds at
/// `q` queries per round.
///
/// # Panics
///
/// Panics if `tau_dec == 0`.
pub fn ast_enc<H>(hash: &H, msg: &[u8], tau_dec: u64, q: u32, rng: &mut Drbg) -> AstCiphertext
where
    H: Fn(&[u8]) -> Element,
{
    assert!(tau_dec > 0, "time-lock difficulty must be positive");
    let rs = sample_chain_randomness(tau_dec, q, rng);
    let hashes: Vec<Element> = rs.iter().map(|r| hash(r)).collect();
    ast_enc_with_hashes(msg, tau_dec, &rs, &hashes, rng)
}

/// `AST.Enc` when the chain hashes were already obtained from one parallel
/// wrapper batch (protocol step `Q_0`).
///
/// # Panics
///
/// Panics if `rs` is empty or `hashes.len() != rs.len()`.
pub fn ast_enc_with_hashes(
    msg: &[u8],
    tau_dec: u64,
    rs: &[Element],
    hashes: &[Element],
    rng: &mut Drbg,
) -> AstCiphertext {
    let key = SkeKey::generate(rng);
    let ske_ct = ske::encrypt(&key, msg, rng);
    let chain = hashchain::chain_encode_with_hashes(rs, hashes, &key.0);
    AstCiphertext {
        tau_dec,
        ske_ct,
        chain,
    }
}

/// `AST.Dec` given a precomputed decryption witness.
///
/// # Errors
///
/// Returns [`AstDecryptError`] if the witness or ciphertext is invalid.
pub fn ast_dec(ct: &AstCiphertext, witness: &[Element]) -> Result<Vec<u8>, AstDecryptError> {
    let key_bytes =
        hashchain::payload_from_witness(&ct.chain, witness).map_err(|_| AstDecryptError)?;
    let key = SkeKey::from_bytes(&key_bytes);
    ske::decrypt(&key, &ct.ske_ct).map_err(|_| AstDecryptError)
}

/// Solves the puzzle (sequentially) and decrypts — the adversary/simulator
/// path with unmetered hashing.
///
/// # Errors
///
/// Returns [`AstDecryptError`] if the ciphertext is malformed or fails
/// authentication.
pub fn ast_solve_and_dec<H>(hash: &H, ct: &AstCiphertext) -> Result<Vec<u8>, AstDecryptError>
where
    H: Fn(&[u8]) -> Element,
{
    let (_, witness) = hashchain::chain_solve(hash, &ct.chain).map_err(|_| AstDecryptError)?;
    ast_dec(ct, &witness)
}

/// Starts an incremental solver for a ciphertext's puzzle.
///
/// # Errors
///
/// Returns [`AstDecryptError`] if the chain is malformed.
pub fn ast_solver(ct: &AstCiphertext) -> Result<ChainSolver, AstDecryptError> {
    ChainSolver::new(&ct.chain).map_err(|_| AstDecryptError)
}

/// Expands a 32-byte seed into a keystream and XORs it over `data` — the
/// equivocation mask `M ⊕ η` used by Π_FBC/Π_SBC with variable-length
/// messages. Involution: applying twice recovers `data`.
pub fn xor_mask(seed: &[u8; 32], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (i, chunk) in data.chunks(32).enumerate() {
        let ks = Sha256::digest_parts(&[b"mask", seed, &(i as u64).to_be_bytes()]);
        for (j, b) in chunk.iter().enumerate() {
            out.push(b ^ ks[j]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(x: &[u8]) -> Element {
        Sha256::digest(x)
    }

    fn rng() -> Drbg {
        Drbg::from_seed(b"ast-tests")
    }

    #[test]
    fn enc_dec_round_trip() {
        let mut r = rng();
        for (tau, q) in [(1u64, 1u32), (2, 3), (3, 5)] {
            let ct = ast_enc(&h, b"secret message", tau, q, &mut r);
            assert_eq!(ct.solve_steps(), (tau * q as u64) as usize);
            assert_eq!(
                ast_solve_and_dec(&h, &ct).unwrap(),
                b"secret message",
                "tau={tau} q={q}"
            );
        }
    }

    #[test]
    fn witness_based_decryption() {
        let mut r = rng();
        let ct = ast_enc(&h, b"msg", 2, 4, &mut r);
        let mut solver = ast_solver(&ct).unwrap();
        while !solver.is_done() {
            solver.step(&h);
        }
        let witness = solver.into_witness();
        assert_eq!(ast_dec(&ct, &witness).unwrap(), b"msg");
    }

    #[test]
    fn wrong_witness_rejected() {
        let mut r = rng();
        let ct = ast_enc(&h, b"msg", 1, 4, &mut r);
        let bad = vec![[0u8; 32]; ct.solve_steps()];
        assert!(ast_dec(&ct, &bad).is_err());
        assert!(ast_dec(&ct, &[]).is_err());
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let mut r = rng();
        let mut ct = ast_enc(&h, b"msg", 1, 4, &mut r);
        ct.ske_ct[0] ^= 1;
        assert!(ast_solve_and_dec(&h, &ct).is_err());
    }

    #[test]
    fn tampered_chain_rejected() {
        // The SKE MAC catches a corrupted chain (wrong key recovered).
        let mut r = rng();
        let mut ct = ast_enc(&h, b"msg", 1, 4, &mut r);
        ct.chain[1][5] ^= 1;
        assert!(ast_solve_and_dec(&h, &ct).is_err());
    }

    #[test]
    fn serialization_round_trip() {
        let mut r = rng();
        let ct = ast_enc(&h, b"round trip", 2, 3, &mut r);
        let bytes = ct.to_bytes();
        assert_eq!(AstCiphertext::from_bytes(&bytes), Some(ct));
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert_eq!(AstCiphertext::from_bytes(&[]), None);
        assert_eq!(AstCiphertext::from_bytes(&[0u8; 10]), None);
        let mut r = rng();
        let ct = ast_enc(&h, b"x", 1, 2, &mut r);
        let mut bytes = ct.to_bytes();
        bytes.push(0); // trailing garbage
        assert_eq!(AstCiphertext::from_bytes(&bytes), None);
    }

    #[test]
    fn sequentiality_step_count() {
        let mut r = rng();
        let ct = ast_enc(&h, b"count", 3, 7, &mut r);
        let mut solver = ast_solver(&ct).unwrap();
        let mut steps = 0;
        while !solver.is_done() {
            solver.step(&h);
            steps += 1;
        }
        assert_eq!(steps, 21, "q·τ = 7·3 sequential queries");
    }

    #[test]
    fn xor_mask_involution() {
        let seed = [9u8; 32];
        for len in [0usize, 1, 31, 32, 33, 100] {
            let data: Vec<u8> = (0..len as u32).map(|i| i as u8).collect();
            let masked = xor_mask(&seed, &data);
            assert_eq!(xor_mask(&seed, &masked), data, "len {len}");
            if len > 0 {
                assert_ne!(masked, data);
            }
        }
    }

    #[test]
    fn xor_mask_seed_sensitivity() {
        let a = xor_mask(&[1u8; 32], b"data");
        let b = xor_mask(&[2u8; 32], b"data");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "difficulty must be positive")]
    fn zero_difficulty_panics() {
        ast_enc(&h, b"x", 0, 4, &mut rng());
    }

    #[test]
    fn ciphertexts_hide_message() {
        // Semantic sanity: two encryptions of the same message differ, and
        // no chain element equals the SKE key.
        let mut r = rng();
        let c1 = ast_enc(&h, b"same", 1, 3, &mut r);
        let c2 = ast_enc(&h, b"same", 1, 3, &mut r);
        assert_ne!(c1, c2);
    }
}
