//! Symmetric-key encryption Σ_SKE = (Gen, Enc, Dec) used inside Astrolabous.
//!
//! The paper only requires a semantically secure symmetric scheme; we
//! instantiate it as a SHA-256 counter-mode stream cipher with an HMAC tag
//! (encrypt-then-MAC), which is IND-CPA (and INT-CTXT) in the random-oracle
//! model.
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::ske::{SkeKey, encrypt, decrypt};
//! use sbc_primitives::drbg::Drbg;
//!
//! let mut rng = Drbg::from_seed(b"doc");
//! let key = SkeKey::generate(&mut rng);
//! let ct = encrypt(&key, b"attack at dawn", &mut rng);
//! assert_eq!(decrypt(&key, &ct).unwrap(), b"attack at dawn");
//! ```

use crate::drbg::Drbg;
use crate::hmac::hmac_sha256;
use crate::sha256::{Sha256, DIGEST_LEN};
use std::fmt;

/// Byte length of an SKE key.
pub const KEY_LEN: usize = 32;

/// Byte length of the nonce prepended to each ciphertext.
pub const NONCE_LEN: usize = 16;

/// A 256-bit symmetric key (`SKE.Gen` output).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SkeKey(pub [u8; KEY_LEN]);

impl fmt::Debug for SkeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SkeKey(..)")
    }
}

impl SkeKey {
    /// Samples a fresh key (`SKE.Gen(1^λ)`).
    pub fn generate(rng: &mut Drbg) -> Self {
        let b = rng.gen_bytes(KEY_LEN);
        let mut k = [0u8; KEY_LEN];
        k.copy_from_slice(&b);
        SkeKey(k)
    }

    /// Builds a key from raw bytes.
    pub fn from_bytes(bytes: &[u8; KEY_LEN]) -> Self {
        SkeKey(*bytes)
    }
}

/// Error returned when decryption fails authentication or framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecryptError;

impl fmt::Display for DecryptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ciphertext failed authentication")
    }
}

impl std::error::Error for DecryptError {}

fn keystream_block(key: &SkeKey, nonce: &[u8], counter: u64) -> [u8; DIGEST_LEN] {
    Sha256::digest_parts(&[b"ske-ctr", &key.0, nonce, &counter.to_be_bytes()])
}

fn xor_keystream(key: &SkeKey, nonce: &[u8], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (i, chunk) in data.chunks(DIGEST_LEN).enumerate() {
        let ks = keystream_block(key, nonce, i as u64);
        for (j, b) in chunk.iter().enumerate() {
            out.push(b ^ ks[j]);
        }
    }
    out
}

/// Encrypts `plaintext` under `key` (`SKE.Enc`).
///
/// Layout: `nonce (16) || body || tag (32)`.
pub fn encrypt(key: &SkeKey, plaintext: &[u8], rng: &mut Drbg) -> Vec<u8> {
    let nonce = rng.gen_bytes(NONCE_LEN);
    let body = xor_keystream(key, &nonce, plaintext);
    let mut ct = nonce;
    ct.extend_from_slice(&body);
    let tag = hmac_sha256(&key.0, &ct);
    ct.extend_from_slice(&tag);
    ct
}

/// Decrypts a ciphertext produced by [`encrypt`] (`SKE.Dec`).
///
/// # Errors
///
/// Returns [`DecryptError`] if the ciphertext is too short or the
/// authentication tag does not verify.
pub fn decrypt(key: &SkeKey, ciphertext: &[u8]) -> Result<Vec<u8>, DecryptError> {
    if ciphertext.len() < NONCE_LEN + DIGEST_LEN {
        return Err(DecryptError);
    }
    let (framed, tag) = ciphertext.split_at(ciphertext.len() - DIGEST_LEN);
    let expect = hmac_sha256(&key.0, framed);
    let mut acc = 0u8;
    for (a, b) in expect.iter().zip(tag.iter()) {
        acc |= a ^ b;
    }
    if acc != 0 {
        return Err(DecryptError);
    }
    let (nonce, body) = framed.split_at(NONCE_LEN);
    Ok(xor_keystream(key, nonce, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Drbg {
        Drbg::from_seed(b"ske-tests")
    }

    #[test]
    fn round_trip() {
        let mut r = rng();
        let key = SkeKey::generate(&mut r);
        for len in [0usize, 1, 31, 32, 33, 100, 1000] {
            let pt: Vec<u8> = (0..len as u32).map(|i| (i % 251) as u8).collect();
            let ct = encrypt(&key, &pt, &mut r);
            assert_eq!(decrypt(&key, &ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn wrong_key_fails() {
        let mut r = rng();
        let k1 = SkeKey::generate(&mut r);
        let k2 = SkeKey::generate(&mut r);
        let ct = encrypt(&k1, b"secret", &mut r);
        assert_eq!(decrypt(&k2, &ct), Err(DecryptError));
    }

    #[test]
    fn tampering_detected() {
        let mut r = rng();
        let key = SkeKey::generate(&mut r);
        let ct = encrypt(&key, b"secret", &mut r);
        for i in 0..ct.len() {
            let mut bad = ct.clone();
            bad[i] ^= 0x80;
            assert_eq!(decrypt(&key, &bad), Err(DecryptError), "byte {i}");
        }
    }

    #[test]
    fn short_ciphertext_rejected() {
        let key = SkeKey::from_bytes(&[7u8; KEY_LEN]);
        assert_eq!(decrypt(&key, &[0u8; 10]), Err(DecryptError));
        assert_eq!(decrypt(&key, &[]), Err(DecryptError));
    }

    #[test]
    fn ciphertexts_randomized() {
        let mut r = rng();
        let key = SkeKey::generate(&mut r);
        let c1 = encrypt(&key, b"same message", &mut r);
        let c2 = encrypt(&key, b"same message", &mut r);
        assert_ne!(c1, c2);
    }

    #[test]
    fn key_debug_redacts() {
        let key = SkeKey::from_bytes(&[9u8; KEY_LEN]);
        assert_eq!(format!("{key:?}"), "SkeKey(..)");
    }
}
