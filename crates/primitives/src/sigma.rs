//! Σ-protocols over [`SchnorrGroup`]: Schnorr proofs of knowledge,
//! Chaum–Pedersen discrete-log-equality (DLEQ) proofs, and their disjunctive
//! (OR) composition — made non-interactive with Fiat–Shamir.
//!
//! These are the ballot-validity proofs of the self-tallying voting protocol
//! (paper Fig. 18): a voter proves that her ballot `b = r^x · g^v` uses her
//! registered secret exponent `x` (matching verification key `w_x = w^x`)
//! and encodes an allowable vote `v ∈ {0, …, k−1}`, without revealing `v`.
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::group::SchnorrGroup;
//! use sbc_primitives::sigma::{schnorr_prove, schnorr_verify};
//! use sbc_primitives::drbg::Drbg;
//!
//! let grp = SchnorrGroup::tiny();
//! let mut rng = Drbg::from_seed(b"doc");
//! let x = grp.random_scalar(&mut rng);
//! let h = grp.exp(&grp.generator(), &x);
//! let proof = schnorr_prove(&grp, &grp.generator(), &x, b"ctx", &mut rng);
//! assert!(schnorr_verify(&grp, &grp.generator(), &h, b"ctx", &proof));
//! ```

use crate::bigint::U256;
use crate::drbg::Drbg;
use crate::group::{Element, Scalar, SchnorrGroup};
use crate::sha256::Sha256;

/// Non-interactive Schnorr proof of knowledge of `x` with `h = g^x`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchnorrProof {
    /// Commitment `A = g^s`.
    pub commitment: Element,
    /// Response `z = s + c·x mod q`.
    pub response: Scalar,
}

/// Non-interactive Chaum–Pedersen DLEQ proof: knowledge of `x` with
/// `h1 = g1^x` and `h2 = g2^x`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DleqProof {
    /// Commitments `(A, B) = (g1^s, g2^s)`.
    pub commitment: (Element, Element),
    /// Response `z = s + c·x mod q`.
    pub response: Scalar,
}

/// Disjunctive DLEQ proof: for one (hidden) index `v` among `k` candidate
/// statements, the prover knows `x` with `h1 = g1^x ∧ t_v = g2^x`, where
/// `t_j` is derived per candidate by the verifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DleqOrProof {
    /// Per-candidate commitments `(A_j, B_j)`.
    pub commitments: Vec<(Element, Element)>,
    /// Per-candidate challenges summing to the Fiat–Shamir challenge.
    pub challenges: Vec<Scalar>,
    /// Per-candidate responses.
    pub responses: Vec<Scalar>,
}

fn challenge(grp: &SchnorrGroup, context: &[u8], parts: &[&Element]) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"sigma-fs-v1");
    h.update(&(context.len() as u64).to_be_bytes());
    h.update(context);
    h.update(&grp.modulus().to_be_bytes());
    for e in parts {
        h.update(&e.0.to_be_bytes());
    }
    Scalar(U256::from_be_bytes(&h.finalize()).rem(grp.order()))
}

/// Proves knowledge of `x` such that `g^x` equals the public key derived by
/// the verifier. `context` domain-separates the proof (session, statement).
pub fn schnorr_prove(
    grp: &SchnorrGroup,
    g: &Element,
    x: &Scalar,
    context: &[u8],
    rng: &mut Drbg,
) -> SchnorrProof {
    let s = grp.random_scalar(rng);
    let a = grp.exp(g, &s);
    let h = grp.exp(g, x);
    let c = challenge(grp, context, &[g, &h, &a]);
    let z = grp.scalar_add(&s, &grp.scalar_mul(&c, x));
    SchnorrProof {
        commitment: a,
        response: z,
    }
}

/// Verifies a [`SchnorrProof`] for statement `h = g^x`.
pub fn schnorr_verify(
    grp: &SchnorrGroup,
    g: &Element,
    h: &Element,
    context: &[u8],
    proof: &SchnorrProof,
) -> bool {
    if !grp.is_element(&proof.commitment) || !grp.is_element(h) {
        return false;
    }
    let c = challenge(grp, context, &[g, h, &proof.commitment]);
    // g^z == A · h^c
    grp.exp(g, &proof.response) == grp.mul(&proof.commitment, &grp.exp(h, &c))
}

/// Proves `h1 = g1^x ∧ h2 = g2^x` (Chaum–Pedersen).
pub fn dleq_prove(
    grp: &SchnorrGroup,
    g1: &Element,
    g2: &Element,
    x: &Scalar,
    context: &[u8],
    rng: &mut Drbg,
) -> DleqProof {
    let s = grp.random_scalar(rng);
    let a = grp.exp(g1, &s);
    let b = grp.exp(g2, &s);
    let h1 = grp.exp(g1, x);
    let h2 = grp.exp(g2, x);
    let c = challenge(grp, context, &[g1, g2, &h1, &h2, &a, &b]);
    let z = grp.scalar_add(&s, &grp.scalar_mul(&c, x));
    DleqProof {
        commitment: (a, b),
        response: z,
    }
}

/// Verifies a [`DleqProof`] for statement `h1 = g1^x ∧ h2 = g2^x`.
pub fn dleq_verify(
    grp: &SchnorrGroup,
    g1: &Element,
    g2: &Element,
    h1: &Element,
    h2: &Element,
    context: &[u8],
    proof: &DleqProof,
) -> bool {
    let (a, b) = &proof.commitment;
    if ![a, b, h1, h2].iter().all(|e| grp.is_element(e)) {
        return false;
    }
    let c = challenge(grp, context, &[g1, g2, h1, h2, a, b]);
    grp.exp(g1, &proof.response) == grp.mul(a, &grp.exp(h1, &c))
        && grp.exp(g2, &proof.response) == grp.mul(b, &grp.exp(h2, &c))
}

fn or_challenge(
    grp: &SchnorrGroup,
    context: &[u8],
    statements: &[(Element, Element)],
    commitments: &[(Element, Element)],
    bases: (&Element, &Element),
) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"sigma-or-fs-v1");
    h.update(&(context.len() as u64).to_be_bytes());
    h.update(context);
    h.update(&grp.modulus().to_be_bytes());
    h.update(&bases.0 .0.to_be_bytes());
    h.update(&bases.1 .0.to_be_bytes());
    for (s1, s2) in statements {
        h.update(&s1.0.to_be_bytes());
        h.update(&s2.0.to_be_bytes());
    }
    for (a, b) in commitments {
        h.update(&a.0.to_be_bytes());
        h.update(&b.0.to_be_bytes());
    }
    Scalar(U256::from_be_bytes(&h.finalize()).rem(grp.order()))
}

/// Proves that for the (secret) index `real_index`, the prover knows `x`
/// with `targets[real_index] = (g1^x, g2^x)`; the other candidates are
/// simulated (CDS OR-composition).
///
/// `targets[j] = (h1_j, h2_j)` are the per-candidate statement pairs.
///
/// # Panics
///
/// Panics if `real_index` is out of range or `targets` is empty.
#[allow(clippy::too_many_arguments)] // the statement of the OR-relation is 8-ary
pub fn dleq_or_prove(
    grp: &SchnorrGroup,
    g1: &Element,
    g2: &Element,
    targets: &[(Element, Element)],
    real_index: usize,
    x: &Scalar,
    context: &[u8],
    rng: &mut Drbg,
) -> DleqOrProof {
    assert!(!targets.is_empty(), "need at least one candidate");
    assert!(real_index < targets.len(), "real_index out of range");
    let k = targets.len();
    let mut commitments = vec![(grp.one(), grp.one()); k];
    let mut challenges = vec![Scalar(U256::ZERO); k];
    let mut responses = vec![Scalar(U256::ZERO); k];

    // Simulate all branches except the real one.
    for j in 0..k {
        if j == real_index {
            continue;
        }
        let cj = grp.random_scalar(rng);
        let zj = grp.random_scalar(rng);
        let (h1j, h2j) = &targets[j];
        // A_j = g1^{z_j} · h1_j^{-c_j},  B_j = g2^{z_j} · h2_j^{-c_j}
        let a = grp.mul(&grp.exp(g1, &zj), &grp.inv(&grp.exp(h1j, &cj)));
        let b = grp.mul(&grp.exp(g2, &zj), &grp.inv(&grp.exp(h2j, &cj)));
        commitments[j] = (a, b);
        challenges[j] = cj;
        responses[j] = zj;
    }

    // Real branch commitment.
    let s = grp.random_scalar(rng);
    commitments[real_index] = (grp.exp(g1, &s), grp.exp(g2, &s));

    // Fiat–Shamir over everything; real challenge is the remainder.
    let total = or_challenge(grp, context, targets, &commitments, (g1, g2));
    let mut c_real = total;
    for (j, cj) in challenges.iter().enumerate() {
        if j != real_index {
            c_real = grp.scalar_sub(&c_real, cj);
        }
    }
    challenges[real_index] = c_real;
    responses[real_index] = grp.scalar_add(&s, &grp.scalar_mul(&c_real, x));

    DleqOrProof {
        commitments,
        challenges,
        responses,
    }
}

/// Verifies a [`DleqOrProof`] against the candidate statement list.
pub fn dleq_or_verify(
    grp: &SchnorrGroup,
    g1: &Element,
    g2: &Element,
    targets: &[(Element, Element)],
    context: &[u8],
    proof: &DleqOrProof,
) -> bool {
    let k = targets.len();
    if k == 0
        || proof.commitments.len() != k
        || proof.challenges.len() != k
        || proof.responses.len() != k
    {
        return false;
    }
    for (h1, h2) in targets {
        if !grp.is_element(h1) || !grp.is_element(h2) {
            return false;
        }
    }
    // Sum of challenges must equal the Fiat–Shamir challenge.
    let total = or_challenge(grp, context, targets, &proof.commitments, (g1, g2));
    let mut sum = Scalar(U256::ZERO);
    for c in &proof.challenges {
        sum = grp.scalar_add(&sum, c);
    }
    if sum != total {
        return false;
    }
    // Per-branch verification equations.
    for (j, (h1j, h2j)) in targets.iter().enumerate() {
        let (a, b) = &proof.commitments[j];
        let cj = &proof.challenges[j];
        let zj = &proof.responses[j];
        if grp.exp(g1, zj) != grp.mul(a, &grp.exp(h1j, cj)) {
            return false;
        }
        if grp.exp(g2, zj) != grp.mul(b, &grp.exp(h2j, cj)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SchnorrGroup, Drbg) {
        (SchnorrGroup::tiny(), Drbg::from_seed(b"sigma-tests"))
    }

    #[test]
    fn schnorr_completeness() {
        let (grp, mut rng) = setup();
        let g = grp.generator();
        let x = grp.random_scalar(&mut rng);
        let h = grp.exp(&g, &x);
        let proof = schnorr_prove(&grp, &g, &x, b"test", &mut rng);
        assert!(schnorr_verify(&grp, &g, &h, b"test", &proof));
    }

    #[test]
    fn schnorr_wrong_statement_rejected() {
        let (grp, mut rng) = setup();
        let g = grp.generator();
        let x = grp.random_scalar(&mut rng);
        let proof = schnorr_prove(&grp, &g, &x, b"test", &mut rng);
        let wrong_h = grp.exp(&g, &grp.scalar_add(&x, &grp.scalar_from_u64(1)));
        assert!(!schnorr_verify(&grp, &g, &wrong_h, b"test", &proof));
    }

    #[test]
    fn schnorr_context_bound() {
        let (grp, mut rng) = setup();
        let g = grp.generator();
        let x = grp.random_scalar(&mut rng);
        let h = grp.exp(&g, &x);
        let proof = schnorr_prove(&grp, &g, &x, b"ctx-a", &mut rng);
        assert!(!schnorr_verify(&grp, &g, &h, b"ctx-b", &proof));
    }

    #[test]
    fn dleq_completeness() {
        let (grp, mut rng) = setup();
        let g1 = grp.generator();
        let g2 = grp.hash_to_element(b"g2");
        let x = grp.random_scalar(&mut rng);
        let h1 = grp.exp(&g1, &x);
        let h2 = grp.exp(&g2, &x);
        let proof = dleq_prove(&grp, &g1, &g2, &x, b"t", &mut rng);
        assert!(dleq_verify(&grp, &g1, &g2, &h1, &h2, b"t", &proof));
    }

    #[test]
    fn dleq_unequal_logs_rejected() {
        let (grp, mut rng) = setup();
        let g1 = grp.generator();
        let g2 = grp.hash_to_element(b"g2");
        let x = grp.random_scalar(&mut rng);
        let y = grp.scalar_add(&x, &grp.scalar_from_u64(1));
        let h1 = grp.exp(&g1, &x);
        let h2 = grp.exp(&g2, &y); // different exponent
        let proof = dleq_prove(&grp, &g1, &g2, &x, b"t", &mut rng);
        assert!(!dleq_verify(&grp, &g1, &g2, &h1, &h2, b"t", &proof));
    }

    #[test]
    fn dleq_tampered_response_rejected() {
        let (grp, mut rng) = setup();
        let g1 = grp.generator();
        let g2 = grp.hash_to_element(b"g2");
        let x = grp.random_scalar(&mut rng);
        let h1 = grp.exp(&g1, &x);
        let h2 = grp.exp(&g2, &x);
        let mut proof = dleq_prove(&grp, &g1, &g2, &x, b"t", &mut rng);
        proof.response = grp.scalar_add(&proof.response, &grp.scalar_from_u64(1));
        assert!(!dleq_verify(&grp, &g1, &g2, &h1, &h2, b"t", &proof));
    }

    fn or_setup(
        grp: &SchnorrGroup,
        rng: &mut Drbg,
        k: usize,
        real: usize,
    ) -> (Element, Element, Vec<(Element, Element)>, Scalar) {
        let g1 = grp.generator();
        let g2 = grp.hash_to_element(b"or-g2");
        let x = grp.random_scalar(rng);
        // Candidate targets: the real one is (g1^x, g2^x); others are junk.
        let mut targets = Vec::new();
        for j in 0..k {
            if j == real {
                targets.push((grp.exp(&g1, &x), grp.exp(&g2, &x)));
            } else {
                let junk = grp.random_scalar(rng);
                let junk2 = grp.random_scalar(rng);
                targets.push((grp.exp(&g1, &junk), grp.exp(&g2, &junk2)));
            }
        }
        (g1, g2, targets, x)
    }

    #[test]
    fn or_proof_completeness_all_indices() {
        let (grp, mut rng) = setup();
        for k in [2usize, 3, 5] {
            for real in 0..k {
                let (g1, g2, targets, x) = or_setup(&grp, &mut rng, k, real);
                let proof = dleq_or_prove(&grp, &g1, &g2, &targets, real, &x, b"or", &mut rng);
                assert!(
                    dleq_or_verify(&grp, &g1, &g2, &targets, b"or", &proof),
                    "k={k} real={real}"
                );
            }
        }
    }

    #[test]
    fn or_proof_without_witness_fails() {
        // Prover claims index 0 but the witness doesn't match target 0.
        let (grp, mut rng) = setup();
        let g1 = grp.generator();
        let g2 = grp.hash_to_element(b"or-g2");
        let x = grp.random_scalar(&mut rng);
        let y = grp.scalar_add(&x, &grp.scalar_from_u64(1));
        let targets = vec![
            (grp.exp(&g1, &y), grp.exp(&g2, &y)),
            (grp.exp(&g1, &y), grp.exp(&g2, &x)),
        ];
        let proof = dleq_or_prove(&grp, &g1, &g2, &targets, 0, &x, b"or", &mut rng);
        assert!(!dleq_or_verify(&grp, &g1, &g2, &targets, b"or", &proof));
    }

    #[test]
    fn or_proof_mismatched_lengths_rejected() {
        let (grp, mut rng) = setup();
        let (g1, g2, targets, x) = or_setup(&grp, &mut rng, 2, 0);
        let mut proof = dleq_or_prove(&grp, &g1, &g2, &targets, 0, &x, b"or", &mut rng);
        proof.challenges.pop();
        assert!(!dleq_or_verify(&grp, &g1, &g2, &targets, b"or", &proof));
    }

    #[test]
    fn or_proof_challenge_sum_checked() {
        let (grp, mut rng) = setup();
        let (g1, g2, targets, x) = or_setup(&grp, &mut rng, 2, 1);
        let mut proof = dleq_or_prove(&grp, &g1, &g2, &targets, 1, &x, b"or", &mut rng);
        proof.challenges[0] = grp.scalar_add(&proof.challenges[0], &grp.scalar_from_u64(1));
        assert!(!dleq_or_verify(&grp, &g1, &g2, &targets, b"or", &proof));
    }

    #[test]
    fn or_proof_does_not_reveal_index() {
        // Proofs for real index 0 and 1 must verify identically; (shape-level
        // zero-knowledge sanity check).
        let (grp, mut rng) = setup();
        let g1 = grp.generator();
        let g2 = grp.hash_to_element(b"or-g2");
        let x = grp.random_scalar(&mut rng);
        let t_real = (grp.exp(&g1, &x), grp.exp(&g2, &x));
        let targets0 = vec![t_real, t_real];
        let p0 = dleq_or_prove(&grp, &g1, &g2, &targets0, 0, &x, b"or", &mut rng);
        let p1 = dleq_or_prove(&grp, &g1, &g2, &targets0, 1, &x, b"or", &mut rng);
        assert!(dleq_or_verify(&grp, &g1, &g2, &targets0, b"or", &p0));
        assert!(dleq_or_verify(&grp, &g1, &g2, &targets0, b"or", &p1));
    }
}
