//! Fixed-width 256-bit unsigned integers with modular arithmetic,
//! implemented from scratch for the discrete-log substrate of the
//! self-tallying voting application.
//!
//! `U256` supports the usual ring operations plus `mulmod`/`powmod` (through
//! an internal 512-bit intermediate), which is everything a Schnorr group
//! needs.
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::bigint::U256;
//!
//! let p = U256::from_u64(101);
//! let x = U256::from_u64(7);
//! assert_eq!(x.powmod(&U256::from_u64(100), &p), U256::ONE); // Fermat
//! ```

use std::cmp::Ordering;
use std::fmt;

/// 256-bit unsigned integer, four 64-bit little-endian limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct U256(pub [u64; 4]);

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{})", self.to_hex())
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Default for U256 {
    fn default() -> Self {
        U256::ZERO
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value 1.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value (2^256 − 1).
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Builds a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Parses a big-endian hex string (up to 64 hex digits).
    ///
    /// # Panics
    ///
    /// Panics if the string is longer than 64 digits or contains non-hex
    /// characters; intended for compile-time-style constants in code.
    pub fn from_hex(s: &str) -> Self {
        let s = s.trim_start_matches("0x");
        assert!(s.len() <= 64, "hex literal too long for U256");
        let mut limbs = [0u64; 4];
        for (nibbles, c) in s.chars().rev().enumerate() {
            let d = c.to_digit(16).expect("invalid hex digit in U256 literal") as u64;
            let limb = nibbles / 16;
            let shift = (nibbles % 16) * 4;
            limbs[limb] |= d << shift;
        }
        U256(limbs)
    }

    /// Lowercase big-endian hex without leading zeros (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        for limb in self.0.iter().rev() {
            s.push_str(&format!("{limb:016x}"));
        }
        let trimmed = s.trim_start_matches('0');
        if trimmed.is_empty() {
            "0".to_string()
        } else {
            trimmed.to_string()
        }
    }

    /// Builds a value from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut limb = [0u8; 8];
            limb.copy_from_slice(&bytes[8 * (3 - i)..8 * (3 - i) + 8]);
            limbs[i] = u64::from_be_bytes(limb);
        }
        U256(limbs)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * (3 - i)..8 * (3 - i) + 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// True iff the value is even.
    pub fn is_even(&self) -> bool {
        self.0[0] & 1 == 0
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Wrapping addition, returning `(sum, carry)`.
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (i, o) in out.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *o = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Wrapping subtraction, returning `(diff, borrow)`.
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (i, o) in out.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            *o = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(&self, rhs: &U256) -> Option<U256> {
        let (s, c) = self.overflowing_add(rhs);
        if c {
            None
        } else {
            Some(s)
        }
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        let (d, b) = self.overflowing_sub(rhs);
        if b {
            None
        } else {
            Some(d)
        }
    }

    /// Full 256×256→512-bit multiplication.
    pub fn widening_mul(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let cur = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        U512(out)
    }

    /// `(self + rhs) mod m`. Requires `self < m` and `rhs < m`.
    pub fn addmod(&self, rhs: &U256, m: &U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || &sum >= m {
            sum.overflowing_sub(m).0
        } else {
            sum
        }
    }

    /// `(self - rhs) mod m`. Requires `self < m` and `rhs < m`.
    pub fn submod(&self, rhs: &U256, m: &U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.overflowing_add(m).0
        } else {
            diff
        }
    }

    /// `(self * rhs) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mulmod(&self, rhs: &U256, m: &U256) -> U256 {
        self.widening_mul(rhs).rem(m)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &U256) -> U256 {
        U512::from_u256(self).rem(m)
    }

    /// Modular exponentiation `self^exp mod m` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn powmod(&self, exp: &U256, m: &U256) -> U256 {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if m == &U256::ONE {
            return U256::ZERO;
        }
        let mut base = self.rem(m);
        let mut result = U256::ONE;
        let nbits = exp.bits();
        for i in 0..nbits {
            if exp.bit(i) {
                result = result.mulmod(&base, m);
            }
            if i + 1 < nbits {
                base = base.mulmod(&base, m);
            }
        }
        result
    }

    /// Modular inverse modulo a *prime* `p` via Fermat's little theorem.
    ///
    /// Returns `None` if `self ≡ 0 (mod p)`.
    pub fn invmod_prime(&self, p: &U256) -> Option<U256> {
        let a = self.rem(p);
        if a.is_zero() {
            return None;
        }
        let exp = p.checked_sub(&U256::from_u64(2)).expect("p >= 2");
        Some(a.powmod(&exp, p))
    }

    /// Right shift by one bit.
    pub fn shr1(&self) -> U256 {
        let mut out = [0u64; 4];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] >> 1;
            if i + 1 < 4 {
                *o |= self.0[i + 1] << 63;
            }
        }
        U256(out)
    }
}

/// 512-bit unsigned integer used as a multiplication intermediate.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct U512(pub [u64; 8]);

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        for limb in self.0.iter().rev() {
            s.push_str(&format!("{limb:016x}"));
        }
        write!(f, "U512(0x{})", s.trim_start_matches('0'))
    }
}

impl U512 {
    /// Zero-extends a `U256`.
    pub fn from_u256(v: &U256) -> Self {
        let mut limbs = [0u64; 8];
        limbs[..4].copy_from_slice(&v.0);
        U512(limbs)
    }

    fn bits(&self) -> u32 {
        for i in (0..8).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    fn bit(&self, i: u32) -> bool {
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// `self mod m` by binary long division.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &U256) -> U256 {
        assert!(!m.is_zero(), "modulus must be nonzero");
        let mbits = m.bits();
        let nbits = self.bits();
        if nbits < mbits {
            let mut limbs = [0u64; 4];
            limbs.copy_from_slice(&self.0[..4]);
            return U256(limbs);
        }
        // Running remainder held in 256+1 bits: rem < m always, so after a
        // shift rem < 2m < 2^257; track the extra bit explicitly.
        let mut rem = U256::ZERO;
        for i in (0..nbits).rev() {
            // rem = rem << 1 | bit(i)
            let hi_bit = rem.bit(255);
            let mut shifted = U256([
                (rem.0[0] << 1) | self.bit(i) as u64,
                (rem.0[1] << 1) | (rem.0[0] >> 63),
                (rem.0[2] << 1) | (rem.0[1] >> 63),
                (rem.0[3] << 1) | (rem.0[2] >> 63),
            ]);
            if hi_bit || &shifted >= m {
                shifted = shifted.overflowing_sub(m).0;
            }
            rem = shifted;
        }
        rem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let v = U256::from_hex("deadbeef00112233445566778899aabbccddeeff0123456789abcdef01234567");
        assert_eq!(
            v.to_hex(),
            "deadbeef00112233445566778899aabbccddeeff0123456789abcdef01234567"
        );
        assert_eq!(U256::ZERO.to_hex(), "0");
        assert_eq!(U256::from_hex("0"), U256::ZERO);
    }

    #[test]
    fn byte_round_trip() {
        let v = U256::from_hex("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
        assert_eq!(v.to_be_bytes()[0], 0x01);
        assert_eq!(v.to_be_bytes()[31], 0x20);
    }

    #[test]
    fn ordering() {
        let a = U256::from_u64(5);
        let b = U256::from_hex("10000000000000000"); // 2^64
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn add_sub_inverse() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffff");
        let b = U256::from_u64(12345);
        let (s, c) = a.overflowing_add(&b);
        assert!(!c);
        assert_eq!(s.overflowing_sub(&b).0, a);
    }

    #[test]
    fn add_overflow_wraps() {
        let (s, c) = U256::MAX.overflowing_add(&U256::ONE);
        assert!(c);
        assert_eq!(s, U256::ZERO);
        assert!(U256::MAX.checked_add(&U256::ONE).is_none());
        assert!(U256::ZERO.checked_sub(&U256::ONE).is_none());
    }

    #[test]
    fn widening_mul_small() {
        let a = U256::from_u64(u64::MAX);
        let prod = a.widening_mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(prod.0[0], 1);
        assert_eq!(prod.0[1], u64::MAX - 1);
        assert_eq!(prod.0[2], 0);
    }

    #[test]
    fn mulmod_matches_u128() {
        let m = U256::from_u64(1_000_000_007);
        for (x, y) in [(123u64, 456u64), (u64::MAX, u64::MAX), (999_999_999, 2)] {
            let expect = ((x as u128 * y as u128) % 1_000_000_007u128) as u64;
            assert_eq!(
                U256::from_u64(x).mulmod(&U256::from_u64(y), &m),
                U256::from_u64(expect)
            );
        }
    }

    #[test]
    fn rem_large() {
        // 2^256 - 1 mod 2^130 - 5
        let m = {
            let mut limbs = [0u64; 4];
            limbs[2] = 4; // 2^130
            let v = U256(limbs);
            v.overflowing_sub(&U256::from_u64(5)).0
        };
        let r = U256::MAX.rem(&m);
        assert!(r < m);
        // Cross-check: (r + k*m) has same residue
        assert_eq!(r.rem(&m), r);
    }

    #[test]
    fn powmod_fermat() {
        let p = U256::from_u64(1_000_000_007);
        let a = U256::from_u64(123_456_789);
        let exp = U256::from_u64(1_000_000_006);
        assert_eq!(a.powmod(&exp, &p), U256::ONE);
    }

    #[test]
    fn powmod_edge_cases() {
        let m = U256::from_u64(97);
        assert_eq!(U256::from_u64(5).powmod(&U256::ZERO, &m), U256::ONE);
        assert_eq!(U256::from_u64(5).powmod(&U256::ONE, &m), U256::from_u64(5));
        assert_eq!(
            U256::from_u64(5).powmod(&U256::from_u64(10), &U256::ONE),
            U256::ZERO
        );
    }

    #[test]
    fn invmod_prime_works() {
        let p = U256::from_u64(1_000_000_007);
        let a = U256::from_u64(987_654_321);
        let inv = a.invmod_prime(&p).unwrap();
        assert_eq!(a.mulmod(&inv, &p), U256::ONE);
        assert!(U256::ZERO.invmod_prime(&p).is_none());
    }

    #[test]
    fn addmod_submod() {
        let m = U256::from_u64(101);
        let a = U256::from_u64(100);
        let b = U256::from_u64(5);
        assert_eq!(a.addmod(&b, &m), U256::from_u64(4));
        assert_eq!(b.submod(&a, &m), U256::from_u64(6));
    }

    #[test]
    fn addmod_near_overflow() {
        // m close to 2^256: sum overflows the 256-bit carry.
        let m = U256::MAX;
        let a = m.overflowing_sub(&U256::ONE).0; // m-1
        let b = m.overflowing_sub(&U256::from_u64(2)).0; // m-2
        let r = a.addmod(&b, &m);
        // (m-1 + m-2) mod m = m-3
        assert_eq!(r, m.overflowing_sub(&U256::from_u64(3)).0);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::from_hex("10000000000000000").bits(), 65);
        assert!(U256::from_u64(4).bit(2));
        assert!(!U256::from_u64(4).bit(1));
    }

    #[test]
    fn shr1() {
        assert_eq!(U256::from_u64(10).shr1(), U256::from_u64(5));
        let v = U256::from_hex("10000000000000000");
        assert_eq!(v.shr1(), U256::from_hex("8000000000000000"));
    }

    #[test]
    #[should_panic(expected = "modulus must be nonzero")]
    fn rem_zero_modulus_panics() {
        U256::ONE.rem(&U256::ZERO);
    }
}
