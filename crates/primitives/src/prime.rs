//! Primality testing (Miller–Rabin) and safe-prime utilities for the
//! discrete-log group substrate.
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::bigint::U256;
//! use sbc_primitives::prime::is_probable_prime;
//! use sbc_primitives::drbg::Drbg;
//!
//! let mut rng = Drbg::from_seed(b"doc");
//! assert!(is_probable_prime(&U256::from_u64(1_000_000_007), 32, &mut rng));
//! assert!(!is_probable_prime(&U256::from_u64(1_000_000_008), 32, &mut rng));
//! ```

use crate::bigint::U256;
use crate::drbg::Drbg;

const SMALL_PRIMES: [u64; 25] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

fn rem_u64(n: &U256, d: u64) -> u64 {
    // Compute n mod d limb-by-limb from the top.
    let mut rem: u128 = 0;
    for limb in n.0.iter().rev() {
        rem = ((rem << 64) | *limb as u128) % d as u128;
    }
    rem as u64
}

fn random_below(rng: &mut Drbg, bound: &U256) -> U256 {
    // Rejection-sample a uniform value in [0, bound).
    let bits = bound.bits();
    let bytes = bits.div_ceil(8) as usize;
    loop {
        let raw = rng.gen_bytes(bytes);
        let mut be = [0u8; 32];
        be[32 - bytes..].copy_from_slice(&raw);
        // Mask excess top bits to reduce rejections.
        let excess = (bytes as u32 * 8).saturating_sub(bits);
        if excess > 0 {
            be[32 - bytes] &= 0xffu8 >> excess;
        }
        let v = U256::from_be_bytes(&be);
        if &v < bound {
            return v;
        }
    }
}

/// Miller–Rabin primality test with `rounds` random bases.
///
/// Error probability at most 4^−rounds for composite inputs.
pub fn is_probable_prime(n: &U256, rounds: u32, rng: &mut Drbg) -> bool {
    if n < &U256::from_u64(2) {
        return false;
    }
    for &p in SMALL_PRIMES.iter() {
        if n == &U256::from_u64(p) {
            return true;
        }
        if rem_u64(n, p) == 0 {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let n_minus_1 = n.checked_sub(&U256::ONE).expect("n >= 2");
    let mut d = n_minus_1;
    let mut s = 0u32;
    while d.is_even() {
        d = d.shr1();
        s += 1;
    }
    let two = U256::from_u64(2);
    let span = n.checked_sub(&U256::from_u64(3)).unwrap_or(U256::ONE);
    'witness: for _ in 0..rounds {
        // a uniform in [2, n-2]
        let a = random_below(rng, &span).overflowing_add(&two).0;
        let mut x = a.powmod(&d, n);
        if x == U256::ONE || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mulmod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// True iff `p` is a safe prime: `p` and `(p-1)/2` both (probably) prime.
pub fn is_safe_prime(p: &U256, rounds: u32, rng: &mut Drbg) -> bool {
    if !is_probable_prime(p, rounds, rng) {
        return false;
    }
    let q = p.checked_sub(&U256::ONE).expect("p >= 2").shr1();
    is_probable_prime(&q, rounds, rng)
}

/// Searches for a safe prime with the given bit size, deterministically from
/// `rng`. Intended for offline constant generation and small test groups.
///
/// # Panics
///
/// Panics if `bits < 3` or `bits > 256`.
pub fn find_safe_prime(bits: u32, rng: &mut Drbg) -> U256 {
    assert!((3..=256).contains(&bits), "bits must be in 3..=256");
    loop {
        // Sample candidate q of bits-1 bits, odd, top bit set; p = 2q+1.
        let bytes = (bits - 1).div_ceil(8) as usize;
        let raw = rng.gen_bytes(bytes);
        let mut be = [0u8; 32];
        be[32 - bytes..].copy_from_slice(&raw);
        let excess = (bytes as u32 * 8) - (bits - 1);
        be[32 - bytes] &= 0xffu8 >> excess;
        be[32 - bytes] |= 0x80u8 >> excess; // force top bit
        be[31] |= 1; // force odd
        let q = U256::from_be_bytes(&be);
        if !is_probable_prime(&q, 16, rng) {
            continue;
        }
        let p = q.overflowing_add(&q).0.overflowing_add(&U256::ONE).0;
        if p.bits() == bits && is_probable_prime(&p, 16, rng) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Drbg {
        Drbg::from_seed(b"prime-tests")
    }

    #[test]
    fn small_primes_detected() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 97, 101, 65537] {
            assert!(is_probable_prime(&U256::from_u64(p), 16, &mut r), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [1u64, 4, 9, 15, 91, 561, 1105, 6601, 8911] {
            // includes Carmichael numbers
            assert!(!is_probable_prime(&U256::from_u64(c), 16, &mut r), "{c}");
        }
    }

    #[test]
    fn large_known_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let p = U256::from_hex("7fffffffffffffffffffffffffffffff");
        assert!(is_probable_prime(&p, 24, &mut rng()));
    }

    #[test]
    fn large_known_composite() {
        // 2^128 - 1 = 3 * 5 * 17 * ...
        let c = U256::from_hex("ffffffffffffffffffffffffffffffff");
        assert!(!is_probable_prime(&c, 24, &mut rng()));
    }

    #[test]
    fn safe_prime_search_small() {
        let mut r = rng();
        let p = find_safe_prime(16, &mut r);
        assert_eq!(p.bits(), 16);
        assert!(is_safe_prime(&p, 24, &mut r));
    }

    #[test]
    fn safe_prime_search_64() {
        let mut r = rng();
        let p = find_safe_prime(64, &mut r);
        assert_eq!(p.bits(), 64);
        assert!(is_safe_prime(&p, 24, &mut r));
    }

    #[test]
    fn known_safe_prime_detected() {
        // 23 = 2*11+1 safe; 13 not safe ((13-1)/2 = 6 composite).
        let mut r = rng();
        assert!(is_safe_prime(&U256::from_u64(23), 16, &mut r));
        assert!(!is_safe_prime(&U256::from_u64(13), 16, &mut r));
    }
}
