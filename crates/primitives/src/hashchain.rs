//! Sequential hash-chain puzzles — the raw structure inside Astrolabous
//! time-lock ciphertexts (paper §2.4).
//!
//! A chain over randomness `r_0, …, r_{L-1}` hiding a 32-byte `payload` is
//! the vector
//!
//! ```text
//! (r_0, r_1 ⊕ H(r_0), r_2 ⊕ H(r_1), …, payload ⊕ H(r_{L-1}))
//! ```
//!
//! Recovering `payload` requires exactly `L` *sequential* hash queries:
//! each `r_j` only becomes known after `H(r_{j-1})` has been computed. The
//! UC protocols meter these queries through the `W_q` wrapper, which is what
//! turns "L queries" into "⌈L/q⌉ rounds".
//!
//! The hash function is supplied by the caller as a closure so that the same
//! code runs over a plain hash, an ideal random oracle, or a query-metered
//! wrapper.
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::hashchain::{chain_encode, chain_solve};
//! use sbc_primitives::sha256::Sha256;
//!
//! let h = |x: &[u8]| Sha256::digest(x);
//! let rs = vec![[1u8; 32], [2u8; 32], [3u8; 32]];
//! let payload = [9u8; 32];
//! let chain = chain_encode(&h, &rs, &payload);
//! let (recovered, witness) = chain_solve(&h, &chain).unwrap();
//! assert_eq!(recovered, payload);
//! assert_eq!(witness.len(), 3);
//! ```

use std::fmt;

/// A 32-byte chain element (λ = 256 bits).
pub type Element = [u8; 32];

/// Error returned when a chain is structurally invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainError(&'static str);

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid hash chain: {}", self.0)
    }
}

impl std::error::Error for ChainError {}

fn xor(a: &Element, b: &Element) -> Element {
    let mut out = [0u8; 32];
    for i in 0..32 {
        out[i] = a[i] ^ b[i];
    }
    out
}

/// Builds the chain vector for randomness `rs` hiding `payload`.
///
/// The result has `rs.len() + 1` elements. Building the chain costs
/// `rs.len()` hash queries (these are the *puzzle generation* queries that
/// the protocols batch into their first wrapper query of a round).
///
/// # Panics
///
/// Panics if `rs` is empty — a zero-difficulty chain would expose the
/// payload in the clear.
pub fn chain_encode<H>(hash: &H, rs: &[Element], payload: &Element) -> Vec<Element>
where
    H: Fn(&[u8]) -> Element,
{
    assert!(
        !rs.is_empty(),
        "chain must have at least one randomness element"
    );
    let hashes: Vec<Element> = rs.iter().map(|r| hash(r)).collect();
    chain_encode_with_hashes(rs, &hashes, payload)
}

/// Builds the chain vector when the hashes `H(r_j)` have already been
/// obtained (e.g. from one parallel wrapper batch, as in Π_FBC step 3/Q₀).
///
/// # Panics
///
/// Panics if `rs` is empty or `hashes.len() != rs.len()`.
pub fn chain_encode_with_hashes(
    rs: &[Element],
    hashes: &[Element],
    payload: &Element,
) -> Vec<Element> {
    assert!(
        !rs.is_empty(),
        "chain must have at least one randomness element"
    );
    assert_eq!(rs.len(), hashes.len(), "one hash per randomness element");
    let mut out = Vec::with_capacity(rs.len() + 1);
    out.push(rs[0]);
    for j in 1..rs.len() {
        out.push(xor(&rs[j], &hashes[j - 1]));
    }
    out.push(xor(payload, &hashes[rs.len() - 1]));
    out
}

/// Fully solves a chain, returning `(payload, witness)` where the witness is
/// the list of chain hashes `(H(r_0), …, H(r_{L-1}))` as in `AST.Dec`.
///
/// Costs `chain.len() - 1` sequential hash queries.
///
/// # Errors
///
/// Returns [`ChainError`] if the chain has fewer than two elements.
pub fn chain_solve<H>(hash: &H, chain: &[Element]) -> Result<(Element, Vec<Element>), ChainError>
where
    H: Fn(&[u8]) -> Element,
{
    let mut solver = ChainSolver::new(chain)?;
    while !solver.is_done() {
        solver.step(hash);
    }
    Ok((
        solver.payload().expect("solver done"),
        solver.into_witness(),
    ))
}

/// Recovers the payload from a chain given a precomputed witness
/// (`AST.Dec` given `w_τdec`): `payload = w[L-1] ⊕ chain[L]`.
///
/// # Errors
///
/// Returns [`ChainError`] if the witness length does not match the chain.
pub fn payload_from_witness(chain: &[Element], witness: &[Element]) -> Result<Element, ChainError> {
    if chain.len() < 2 {
        return Err(ChainError("chain shorter than two elements"));
    }
    if witness.len() != chain.len() - 1 {
        return Err(ChainError("witness length does not match chain"));
    }
    Ok(xor(&chain[chain.len() - 1], &witness[witness.len() - 1]))
}

/// Incremental chain solver performing one hash query per [`step`] call.
///
/// This is the object the Π_FBC / Π_TLE protocols keep in their
/// `L_wait`/`L_puzzle` lists: each round they advance every solver by at most
/// `q` steps through the wrapper.
///
/// [`step`]: ChainSolver::step
#[derive(Clone, Debug)]
pub struct ChainSolver {
    chain: Vec<Element>,
    /// Hashes computed so far: `H(r_0), …, H(r_{pos-1})`.
    witness: Vec<Element>,
    /// Current known randomness element `r_pos` (None once done).
    current_r: Option<Element>,
    pos: usize,
}

impl ChainSolver {
    /// Starts solving `chain`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] if the chain has fewer than two elements.
    pub fn new(chain: &[Element]) -> Result<Self, ChainError> {
        if chain.len() < 2 {
            return Err(ChainError("chain shorter than two elements"));
        }
        Ok(ChainSolver {
            chain: chain.to_vec(),
            witness: Vec::with_capacity(chain.len() - 1),
            current_r: Some(chain[0]),
            pos: 0,
        })
    }

    /// Number of hash queries still required to finish.
    pub fn remaining(&self) -> usize {
        (self.chain.len() - 1) - self.pos
    }

    /// Total chain length in hash queries.
    pub fn total_steps(&self) -> usize {
        self.chain.len() - 1
    }

    /// True once the payload can be extracted.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Performs one sequential hash query. Returns `true` if the solver just
    /// finished. Calling `step` on a finished solver is a no-op returning
    /// `true`.
    pub fn step<H>(&mut self, hash: &H) -> bool
    where
        H: Fn(&[u8]) -> Element,
    {
        if self.is_done() {
            return true;
        }
        let r = self.next_query().expect("not done implies a pending query");
        let h = hash(&r);
        self.feed(h)
    }

    /// The randomness element whose hash is needed next, or `None` if done.
    ///
    /// Protocols batch the `next_query` values of all live solvers into one
    /// wrapper evaluation (Π_FBC step 3, Π_TLE `ENCRYPT&SOLVE` step 2) and
    /// then [`feed`](ChainSolver::feed) the responses back.
    pub fn next_query(&self) -> Option<Element> {
        self.current_r
    }

    /// Feeds the oracle response for the last [`next_query`] value.
    /// Returns `true` if the solver just finished.
    ///
    /// [`next_query`]: ChainSolver::next_query
    ///
    /// # Panics
    ///
    /// Panics if the solver is already done.
    pub fn feed(&mut self, h: Element) -> bool {
        assert!(!self.is_done(), "feed on finished solver");
        self.witness.push(h);
        self.pos += 1;
        if self.is_done() {
            self.current_r = None;
        } else {
            self.current_r = Some(xor(&self.chain[self.pos], &h));
        }
        self.is_done()
    }

    /// The recovered payload, if solving has finished.
    pub fn payload(&self) -> Option<Element> {
        if self.is_done() {
            Some(xor(
                &self.chain[self.chain.len() - 1],
                &self.witness[self.witness.len() - 1],
            ))
        } else {
            None
        }
    }

    /// Consumes the solver, returning the accumulated witness hashes.
    pub fn into_witness(self) -> Vec<Element> {
        self.witness
    }

    /// The witness hashes accumulated so far.
    pub fn witness(&self) -> &[Element] {
        &self.witness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::Drbg;
    use crate::sha256::Sha256;

    fn h(x: &[u8]) -> Element {
        Sha256::digest(x)
    }

    fn random_rs(n: usize, seed: &[u8]) -> Vec<Element> {
        let mut rng = Drbg::from_seed(seed);
        (0..n)
            .map(|_| {
                let b = rng.gen_bytes(32);
                let mut e = [0u8; 32];
                e.copy_from_slice(&b);
                e
            })
            .collect()
    }

    #[test]
    fn encode_solve_round_trip() {
        for len in [1usize, 2, 5, 16, 64] {
            let rs = random_rs(len, b"rt");
            let payload = [0x42u8; 32];
            let chain = chain_encode(&h, &rs, &payload);
            assert_eq!(chain.len(), len + 1);
            let (p, w) = chain_solve(&h, &chain).unwrap();
            assert_eq!(p, payload, "len {len}");
            assert_eq!(w.len(), len);
        }
    }

    #[test]
    fn witness_recovers_payload() {
        let rs = random_rs(10, b"w");
        let payload = [7u8; 32];
        let chain = chain_encode(&h, &rs, &payload);
        let (_, w) = chain_solve(&h, &chain).unwrap();
        assert_eq!(payload_from_witness(&chain, &w).unwrap(), payload);
    }

    #[test]
    fn wrong_witness_length_rejected() {
        let rs = random_rs(4, b"wl");
        let chain = chain_encode(&h, &rs, &[0u8; 32]);
        assert!(payload_from_witness(&chain, &[[0u8; 32]; 3]).is_err());
        assert!(payload_from_witness(&[[0u8; 32]], &[]).is_err());
    }

    #[test]
    fn solver_counts_steps_exactly() {
        let rs = random_rs(8, b"steps");
        let chain = chain_encode(&h, &rs, &[1u8; 32]);
        let mut solver = ChainSolver::new(&chain).unwrap();
        assert_eq!(solver.total_steps(), 8);
        let queries = std::cell::Cell::new(0usize);
        while !solver.is_done() {
            solver.step(&|x: &[u8]| {
                queries.set(queries.get() + 1);
                h(x)
            });
        }
        assert_eq!(queries.get(), 8, "exactly L sequential queries");
        assert_eq!(solver.payload().unwrap(), [1u8; 32]);
    }

    #[test]
    fn solver_resumable_across_budgets() {
        // Simulate q=3 queries per round on a 8-step chain: 3 rounds needed.
        let rs = random_rs(8, b"budget");
        let chain = chain_encode(&h, &rs, &[5u8; 32]);
        let mut solver = ChainSolver::new(&chain).unwrap();
        let mut rounds = 0;
        while !solver.is_done() {
            rounds += 1;
            for _ in 0..3 {
                if solver.step(&h) {
                    break;
                }
            }
        }
        assert_eq!(rounds, 3);
        assert_eq!(solver.payload().unwrap(), [5u8; 32]);
    }

    #[test]
    fn step_after_done_is_noop() {
        let rs = random_rs(1, b"noop");
        let chain = chain_encode(&h, &rs, &[3u8; 32]);
        let mut solver = ChainSolver::new(&chain).unwrap();
        assert!(solver.step(&h));
        assert!(solver.step(&h));
        assert_eq!(solver.witness().len(), 1);
    }

    #[test]
    fn intermediate_elements_hide_payload() {
        // No prefix of the chain (without hashing) reveals the payload.
        let rs = random_rs(6, b"hide");
        let payload = [0xAAu8; 32];
        let chain = chain_encode(&h, &rs, &payload);
        for el in &chain {
            assert_ne!(el, &payload);
        }
    }

    #[test]
    fn tampered_chain_yields_wrong_payload() {
        let rs = random_rs(4, b"tamper");
        let payload = [0x1111u16.to_be_bytes()[0]; 32];
        let mut chain = chain_encode(&h, &rs, &payload);
        chain[2][0] ^= 1;
        let (p, _) = chain_solve(&h, &chain).unwrap();
        assert_ne!(p, payload);
    }

    #[test]
    #[should_panic(expected = "at least one randomness")]
    fn empty_randomness_panics() {
        chain_encode(&h, &[], &[0u8; 32]);
    }

    #[test]
    fn short_chain_rejected() {
        assert!(ChainSolver::new(&[[0u8; 32]]).is_err());
        assert!(chain_solve(&h, &[]).is_err());
    }
}
