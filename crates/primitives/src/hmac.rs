//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1), from scratch.
//!
//! # Examples
//!
//! ```
//! use sbc_primitives::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
//! assert_eq!(
//!     sbc_primitives::hex::encode(&tag),
//!     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8",
//! );
//! ```

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA-256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = Sha256::digest(key);
            block_key[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Constant-time verification of an expected tag.
    pub fn verify(self, expected: &[u8]) -> bool {
        let tag = self.finalize();
        if expected.len() != tag.len() {
            return false;
        }
        let mut acc = 0u8;
        for (a, b) in tag.iter().zip(expected.iter()) {
            acc |= a ^ b;
        }
        acc == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"m");
        let tag = mac.clone().finalize();
        assert!(mac.clone().verify(&tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!mac.clone().verify(&bad));
        assert!(!mac.verify(&tag[..31]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"The quick brown fox ");
        mac.update(b"jumps over the lazy dog");
        assert_eq!(
            mac.finalize(),
            hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog")
        );
    }
}
