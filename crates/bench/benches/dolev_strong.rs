//! E1: Dolev–Strong cost scaling with n (t = n−1, the dishonest-majority
//! regime).

use sbc_bench::harness;
use sbc_broadcast::rbc::dolev_strong::DolevStrong;
use sbc_primitives::drbg::Drbg;
use sbc_uc::cert::IdealCert;
use sbc_uc::ids::PartyId;
use sbc_uc::value::Value;

fn run_ds(n: usize) -> u64 {
    let mut rng = Drbg::from_seed(b"ds-bench");
    let certs: Vec<IdealCert> = (0..n as u32)
        .map(|i| IdealCert::new(PartyId(i), rng.fork(&i.to_be_bytes())))
        .collect();
    let mut ds = DolevStrong::new(b"bench".to_vec(), n - 1, PartyId(0), certs);
    ds.start_honest(Value::bytes(b"benchmark payload"));
    ds.run_to_completion();
    ds.stats().0
}

fn main() {
    let g = harness::group("dolev_strong_full_run");
    for n in [4usize, 8, 16] {
        g.bench(&format!("n={n}"), || run_ds(n));
    }
}
