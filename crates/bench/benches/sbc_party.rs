//! `sbc_party_scaling`: round throughput of ONE simultaneous-broadcast
//! instance as the party count grows (8 → 64 → 256 → 1000), measured on
//! the serial reference schedule and on the intra-instance party-sharded
//! schedule (`PartyShard::Sharded` over the persistent executor).
//!
//! Each iteration runs one full broadcast epoch (`submit` × senders,
//! `run_epoch`) on a **long-lived session**, so the persistent worker pool
//! is built once per configuration and amortized across iterations —
//! exactly the service shape the two-level executor targets. The headline
//! metric is **rounds per second**; the sharded rows also record their
//! speedup over the serial row at the same `n`.
//!
//! The hot spots the sharded schedule attacks are the two `O(n²)`-scan
//! phases of a large-`n` round: the release round (every party `Dec`-scans
//! every received wire) and the broadcast round (every wire's delivery
//! runs the replay-protection scan at every recipient). On a single-core
//! host the sharded rows mostly pay dispatch overhead — the recorded
//! `threads` metric says which regime a report came from.
//!
//! **Determinism gate:** before measuring anything, the run drives a
//! serial-schedule and a sharded-schedule world pair through identical
//! adversarial traffic (corruption + wire injection) and asserts
//! `CompareLevel::Exact` transcript equality, exiting non-zero on any
//! divergence — the CI smoke step therefore fails on any ordering bug.
//!
//! The run writes a machine-readable `BENCH_party.json` (the CI smoke step
//! archives it).

use sbc_bench::harness;
use sbc_core::api::SbcSession;
use sbc_core::pool::{PartyShard, PooledSbcWorld, TickMode};
use sbc_core::protocol::sbc_wire;
use sbc_core::worlds::{RealSbcWorld, SbcParams};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::{CompareLevel, PoolDualRun};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::AdvCommand;

/// Cap on submitting parties: full participation at n = 1000 would make a
/// single release round cost `n³` scans (~10⁹) per iteration; a capped
/// sender set keeps iterations measurable while the scan phases — release
/// `Dec`-scans and delivery replay-scans, both `O(senders² · n)` — still
/// dominate the round, which is the regime the party sharding targets.
const SENDERS: usize = 128;

fn senders(n: usize) -> usize {
    SENDERS.min(n / 2).max(1)
}

/// Serial-vs-sharded determinism gate at `CompareLevel::Exact`, under
/// corruption and wire injection. Panics (→ non-zero exit) on divergence.
fn determinism_gate(n: usize, threads: usize) {
    fn world(n: usize, mode: TickMode, shard: PartyShard) -> PooledSbcWorld<RealSbcWorld> {
        let mut w = PooledSbcWorld::new(SbcParams::default_for(n), b"party-bench-gate")
            .expect("valid params");
        w.set_tick_mode(mode);
        w.set_party_shard(shard);
        w
    }
    let mut dual = PoolDualRun::new(
        world(n, TickMode::Serial, PartyShard::Serial),
        world(n, TickMode::Threads(threads), PartyShard::Sharded),
        CompareLevel::Exact,
    );
    let mut adv_rng = Drbg::from_seed(b"party-bench-gate/adv");
    let id = dual.open_instance();
    for p in 0..senders(n) {
        dual.submit(id, PartyId(p as u32), format!("gate-{p}").as_bytes());
    }
    dual.step_round();
    let corrupt = PartyId((n - 1) as u32);
    let (cr, ci) = dual.corrupt(corrupt);
    assert!(cr && ci, "corruption accepted in both schedules");
    let tau = dual.release_round(id).expect("period open");
    dual.adversary(
        id,
        AdvCommand::SendAs {
            party: corrupt,
            cmd: Command::new(
                "Broadcast",
                sbc_wire(
                    &Value::bytes(adv_rng.gen_bytes(64)),
                    tau,
                    &adv_rng.gen_bytes(16),
                ),
            ),
        },
    );
    dual.idle_rounds(8);
    dual.check().unwrap_or_else(|d| {
        panic!("sharded schedule diverged from the serial reference at n = {n}: {d}")
    });
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let threads = cores.max(2);

    let gate_sizes: &[usize] = if harness::smoke_mode() {
        &[8, 64]
    } else {
        &[64, 256]
    };
    for &n in gate_sizes {
        determinism_gate(n, threads);
    }
    println!(
        "determinism gate: sharded transcripts == serial (Exact) at n ∈ {gate_sizes:?} \
         under corruption + injection"
    );

    let sizes: &[usize] = if harness::smoke_mode() {
        // Smoke mode is a bit-rot check, not a measurement: skip the
        // multi-second n = 1000 row.
        &[8, 64, 256]
    } else {
        &[8, 64, 256, 1000]
    };

    let g = harness::group("sbc_party_scaling");
    let mut records = Vec::new();
    let mut serial_median = 0.0f64;
    for &n in sizes {
        for (shard, mode_name) in [(false, "serial"), (true, "sharded")] {
            let (tick_mode, party_shard) = if shard {
                (TickMode::Threads(threads), PartyShard::Sharded)
            } else {
                (TickMode::Serial, PartyShard::Serial)
            };
            // One long-lived session per configuration: the persistent
            // executor is built once and reused by every epoch.
            let mut session = SbcSession::builder(n)
                .seed(b"party-bench")
                .tick_mode(tick_mode)
                .party_shard(party_shard)
                .build()
                .expect("valid params");
            let label = format!("n={n}/{mode_name}");
            let mut rounds = 0u64;
            let stats = g.bench(&label, || {
                let start = session.round();
                for p in 0..senders(n) {
                    session
                        .submit(p as u32, format!("m-{p}").as_bytes())
                        .expect("in period");
                }
                let r = session.run_epoch().expect("epoch releases");
                rounds = session.round() - start;
                r
            });
            let rounds_per_sec = rounds as f64 * 1e9 / stats.median_ns;
            let mut metrics = vec![
                ("n".into(), n as f64),
                ("senders".into(), senders(n) as f64),
                ("rounds".into(), rounds as f64),
                ("rounds_per_sec".into(), rounds_per_sec),
                ("sharded".into(), f64::from(u8::from(shard))),
                ("threads".into(), if shard { threads } else { 1 } as f64),
                ("cores".into(), cores as f64),
            ];
            if shard {
                let speedup = serial_median / stats.median_ns;
                metrics.push(("speedup_vs_serial".into(), speedup));
                println!(
                    "{:<44} {:>10.0} rounds/s   speedup vs serial: {:.2}x",
                    format!("sbc_party_scaling/{label}"),
                    rounds_per_sec,
                    speedup
                );
            } else {
                serial_median = stats.median_ns;
                println!(
                    "{:<44} {:>10.0} rounds/s",
                    format!("sbc_party_scaling/{label}"),
                    rounds_per_sec
                );
            }
            records.push(harness::Record {
                group: "sbc_party_scaling".into(),
                label,
                stats,
                metrics,
            });
        }
    }

    // Default target is the bench cwd (the sbc-bench package root);
    // SBC_BENCH_JSON overrides it, which CI uses to surface the artifact.
    let path = std::env::var("SBC_BENCH_JSON").unwrap_or_else(|_| "BENCH_party.json".to_string());
    harness::write_json_report(&path, &records).expect("write BENCH_party.json");
    println!("\nwrote {path} ({} records)", records.len());
}
