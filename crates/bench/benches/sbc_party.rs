//! `sbc_party_scaling`: round throughput of ONE simultaneous-broadcast
//! instance as the party count grows (8 → 64 → 256 → 1000), measured on
//! the serial reference schedule and on the intra-instance party-sharded
//! schedule (`PartyShard::Sharded` over the persistent executor).
//!
//! Each iteration runs one full broadcast epoch (`submit` × senders,
//! `run_epoch`) on a **long-lived session**, so the persistent worker pool
//! is built once per configuration and amortized across iterations —
//! exactly the service shape the two-level executor targets. The headline
//! metric is **rounds per second**; the sharded rows also record their
//! speedup over the serial row at the same `n`.
//!
//! The hot spots the sharded schedule attacks are the two `O(n²)`-scan
//! phases of a large-`n` round: the release round (every party `Dec`-scans
//! every received wire) and the broadcast round (every wire's delivery
//! runs the replay-protection scan at every recipient). On a single-core
//! host the sharded rows mostly pay dispatch overhead — the recorded
//! `threads` metric says which regime a report came from.
//!
//! **Determinism gate:** before measuring anything, the run drives a
//! serial-schedule and a sharded-schedule world pair through identical
//! adversarial traffic (corruption + wire injection) and asserts
//! `CompareLevel::Exact` transcript equality, exiting non-zero on any
//! divergence — the CI smoke step therefore fails on any ordering bug.
//!
//! The run writes a machine-readable `BENCH_party.json` (the CI smoke step
//! archives it).

use sbc_bench::harness;
use sbc_core::api::SbcSession;
use sbc_core::pool::{PartyShard, PooledSbcWorld, TickMode};
use sbc_core::protocol::sbc_wire;
use sbc_core::worlds::{RealSbcWorld, SbcParams};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::{CompareLevel, PoolDualRun};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::AdvCommand;

/// Cap on submitting parties: full participation at n = 1000 would make a
/// single release round cost `n³` scans (~10⁹) per iteration; a capped
/// sender set keeps iterations measurable while the scan phases — release
/// `Dec`-scans and delivery replay-scans, both `O(senders² · n)` — still
/// dominate the round, which is the regime the party sharding targets.
const SENDERS: usize = 128;

fn senders(n: usize) -> usize {
    SENDERS.min(n / 2).max(1)
}

/// Serial-vs-sharded determinism gate at `CompareLevel::Exact`, under
/// corruption and wire injection. Panics (→ non-zero exit) on divergence.
fn determinism_gate(n: usize, threads: usize) {
    fn world(n: usize, mode: TickMode, shard: PartyShard) -> PooledSbcWorld<RealSbcWorld> {
        let mut w = PooledSbcWorld::new(SbcParams::default_for(n), b"party-bench-gate")
            .expect("valid params");
        w.set_tick_mode(mode);
        w.set_party_shard(shard);
        w
    }
    let mut dual = PoolDualRun::new(
        world(n, TickMode::Serial, PartyShard::Serial),
        world(n, TickMode::Threads(threads), PartyShard::Sharded),
        CompareLevel::Exact,
    );
    let mut adv_rng = Drbg::from_seed(b"party-bench-gate/adv");
    let id = dual.open_instance();
    for p in 0..senders(n) {
        dual.submit(id, PartyId(p as u32), format!("gate-{p}").as_bytes());
    }
    dual.step_round();
    let corrupt = PartyId((n - 1) as u32);
    let (cr, ci) = dual.corrupt(corrupt);
    assert!(cr && ci, "corruption accepted in both schedules");
    let tau = dual.release_round(id).expect("period open");
    dual.adversary(
        id,
        AdvCommand::SendAs {
            party: corrupt,
            cmd: Command::new(
                "Broadcast",
                sbc_wire(
                    &Value::bytes(adv_rng.gen_bytes(64)),
                    tau,
                    &adv_rng.gen_bytes(16),
                ),
            ),
        },
    );
    dual.idle_rounds(8);
    dual.check().unwrap_or_else(|d| {
        panic!("sharded schedule diverged from the serial reference at n = {n}: {d}")
    });
}

/// The core-aware speedup gates, applied to the `t = max(sweep)` sharded
/// row at each gated size:
///
/// * `cores ≥ 4` (CI-grade runner): the sharded schedule must *win* —
///   `speedup_vs_serial ≥ 1.5`.
/// * `cores < 4`: a parallel schedule cannot beat serial on hardware that
///   runs its shards sequentially, so the gate flips to an overhead bound —
///   `speedup_vs_serial ≥ 0.9` (≤ 10% sharding tax). Gating ≥ 1.5× here
///   would institutionalize a vacuous failure; `SBC_BENCH_REQUIRE_SPEEDUP`
///   makes that refusal loud (hard error) instead of silent for runners
///   that are *supposed* to be multi-core.
const MULTI_CORE_GATE: f64 = 1.5;
const SINGLE_CORE_OVERHEAD_GATE: f64 = 0.9;
const GATE_MIN_N: usize = 256;

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let require_speedup = std::env::var("SBC_BENCH_REQUIRE_SPEEDUP").is_ok();
    if require_speedup && cores < 4 {
        eprintln!(
            "SBC_BENCH_REQUIRE_SPEEDUP is set but only {cores} core(s) were detected: \
             the speedup_vs_serial ≥ {MULTI_CORE_GATE}x gate is meaningless without \
             cores ≥ 4, and this run refuses to pretend otherwise"
        );
        std::process::exit(1);
    }

    // Thread sweep: smoke mode pins {1, 2} (a bit-rot check must not
    // depend on the runner's core count); a full run adds the detected
    // core count so multi-core hardware reports — and gates — its real
    // parallel speedup.
    let mut sweep: Vec<usize> = vec![1, 2];
    if !harness::smoke_mode() && cores > 2 {
        sweep.push(cores);
    }

    let gate_sizes: &[usize] = if harness::smoke_mode() {
        &[8, 64]
    } else {
        &[64, 256]
    };
    for &n in gate_sizes {
        for &t in &sweep {
            determinism_gate(n, t);
        }
    }
    println!(
        "determinism gate: sharded transcripts == serial (Exact) at n ∈ {gate_sizes:?}, \
         threads ∈ {sweep:?}, under corruption + injection"
    );

    let sizes: &[usize] = if harness::smoke_mode() {
        // Smoke mode is a bit-rot check, not a measurement: skip the
        // multi-second n = 1000 row.
        &[8, 64, 256]
    } else {
        &[8, 64, 256, 1000]
    };

    let g = harness::group("sbc_party_scaling");
    let mut records = Vec::new();
    let mut gate_failures = Vec::new();
    for &n in sizes {
        let mut serial_median = 0.0f64;
        let configs = std::iter::once(None).chain(sweep.iter().copied().map(Some));
        for threads in configs {
            let (tick_mode, party_shard) = match threads {
                Some(t) => (TickMode::Threads(t), PartyShard::Sharded),
                None => (TickMode::Serial, PartyShard::Serial),
            };
            // One long-lived session per configuration: the persistent
            // executor is built once and reused by every epoch.
            let mut session = SbcSession::builder(n)
                .seed(b"party-bench")
                .tick_mode(tick_mode)
                .party_shard(party_shard)
                .build()
                .expect("valid params");
            let label = match threads {
                Some(t) => format!("n={n}/sharded/t={t}"),
                None => format!("n={n}/serial"),
            };
            let mut rounds = 0u64;
            let stats = g.bench(&label, || {
                let start = session.round();
                for p in 0..senders(n) {
                    session
                        .submit(p as u32, format!("m-{p}").as_bytes())
                        .expect("in period");
                }
                let r = session.run_epoch().expect("epoch releases");
                rounds = session.round() - start;
                r
            });
            let rounds_per_sec = rounds as f64 * 1e9 / stats.median_ns;
            let mut metrics = vec![
                ("n".into(), n as f64),
                ("senders".into(), senders(n) as f64),
                ("rounds".into(), rounds as f64),
                ("rounds_per_sec".into(), rounds_per_sec),
                ("sharded".into(), f64::from(u8::from(threads.is_some()))),
                ("threads".into(), threads.unwrap_or(1) as f64),
                ("cores".into(), cores as f64),
            ];
            if let Some(t) = threads {
                let speedup = serial_median / stats.median_ns;
                metrics.push(("speedup_vs_serial".into(), speedup));
                println!(
                    "{:<44} {:>10.0} rounds/s   speedup vs serial: {:.2}x",
                    format!("sbc_party_scaling/{label}"),
                    rounds_per_sec,
                    speedup
                );
                // Perf gates are a measurement, not a bit-rot check: full
                // runs only, and only the widest sweep row at gated sizes.
                if !harness::smoke_mode() && n >= GATE_MIN_N && t == *sweep.last().unwrap() {
                    let (gate, kind) = if cores >= 4 {
                        (MULTI_CORE_GATE, "multi-core speedup")
                    } else {
                        (SINGLE_CORE_OVERHEAD_GATE, "single-core overhead")
                    };
                    if speedup < gate {
                        gate_failures.push(format!(
                            "{label}: speedup {speedup:.2}x < {gate}x ({kind} gate, \
                             {cores} core(s))"
                        ));
                    }
                }
            } else {
                serial_median = stats.median_ns;
                println!(
                    "{:<44} {:>10.0} rounds/s",
                    format!("sbc_party_scaling/{label}"),
                    rounds_per_sec
                );
            }
            records.push(harness::Record {
                group: "sbc_party_scaling".into(),
                label,
                stats,
                metrics,
            });
        }
    }
    if cores < 4 && !harness::smoke_mode() {
        println!(
            "speedup_vs_serial ≥ {MULTI_CORE_GATE}x gate inactive: requires cores ≥ 4, \
             detected {cores} — gated sharded overhead ≤ 10% instead"
        );
    }

    // Default target is the bench cwd (the sbc-bench package root);
    // SBC_BENCH_JSON overrides it, which CI uses to surface the artifact.
    let path = std::env::var("SBC_BENCH_JSON").unwrap_or_else(|_| "BENCH_party.json".to_string());
    harness::write_json_report(&path, &records).expect("write BENCH_party.json");
    println!("\nwrote {path} ({} records)", records.len());

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("perf gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}
