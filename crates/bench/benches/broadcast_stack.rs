//! E2/E3: throughput of the unfair and fair broadcast worlds.

use sbc_bench::harness;
use sbc_broadcast::fbc::worlds::RealFbcWorld;
use sbc_broadcast::ubc::worlds::RealUbcWorld;
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::run_env;

fn main() {
    let g = harness::group("ubc_broadcast_round");
    for n in [4usize, 8, 16] {
        g.bench(&format!("n={n}"), || {
            let mut w = RealUbcWorld::new(n, b"bench");
            run_env(&mut w, |env| {
                for i in 0..n {
                    env.input(
                        PartyId(i as u32),
                        Command::new("Broadcast", Value::U64(i as u64)),
                    );
                }
                env.advance_all();
            })
        });
    }

    let g = harness::group("fbc_end_to_end");
    for (n, q) in [(3usize, 4u32), (5, 4), (8, 4)] {
        g.bench(&format!("n={n}"), || {
            let mut w = RealFbcWorld::new(n, q, b"bench");
            run_env(&mut w, |env| {
                env.input(PartyId(0), Command::new("Broadcast", Value::bytes(b"m")));
                env.idle_rounds(4);
            })
        });
    }
}
