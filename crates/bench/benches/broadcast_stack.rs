//! E2/E3: throughput of the unfair and fair broadcast worlds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbc_broadcast::fbc::worlds::RealFbcWorld;
use sbc_broadcast::ubc::worlds::RealUbcWorld;
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::run_env;
use std::time::Duration;

fn bench_ubc_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("ubc_broadcast_round");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    for n in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut w = RealUbcWorld::new(n, b"bench");
                run_env(&mut w, |env| {
                    for i in 0..n {
                        env.input(
                            PartyId(i as u32),
                            Command::new("Broadcast", Value::U64(i as u64)),
                        );
                    }
                    env.advance_all();
                })
            })
        });
    }
    g.finish();
}

fn bench_fbc_delivery(c: &mut Criterion) {
    let mut g = c.benchmark_group("fbc_end_to_end");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for (n, q) in [(3usize, 4u32), (5, 4), (8, 4)] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut w = RealFbcWorld::new(n, q, b"bench");
                run_env(&mut w, |env| {
                    env.input(PartyId(0), Command::new("Broadcast", Value::bytes(b"m")));
                    env.idle_rounds(4);
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ubc_round, bench_fbc_delivery);
criterion_main!(benches);
