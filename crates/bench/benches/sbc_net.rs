//! `sbc_net`: throughput of the networked backend — every protocol
//! message encoded to wire frames and moved by a `Transport` — against
//! the in-process world, at n ∈ {8, 64} parties.
//!
//! Three groups:
//!
//! * `sbc_net_codec` — raw frame encode/decode throughput on a
//!   representative wire frame (the `(c, τ_rel, y)` broadcast).
//! * `sbc_net_world` — full periods (submit → release) on the
//!   in-process `RealSbcWorld`, the loopback networked world, the
//!   adversarial `SimNet` world, and (at n=8) the real-socket TCP world.
//!   The headline metric is party-rounds per second; the networked rows
//!   also record frames and bytes moved.
//!
//! **Determinism gates:** before measuring anything, the run drives a
//! real/networked pair at `CompareLevel::Exact` through an adversarial
//! scenario (corruption + injection + the seeded SimNet chaos schedule)
//! and exits non-zero on any transcript divergence — the CI smoke step
//! therefore fails if the networked backend ever drifts from the
//! in-process world. A second gate pins the TCP transport the same way
//! over OS loopback sockets at n=8. Both verdicts are recorded in the
//! JSON report.
//!
//! The run writes `BENCH_net.json` (`SBC_BENCH_JSON` overrides the
//! path), which CI archives next to the pool and e2e reports.

use sbc_bench::harness;
use sbc_core::protocol::sbc_wire;
use sbc_core::worlds::{RealSbcWorld, SbcBackend, SbcParams};
use sbc_net::world::{LoopbackSbcWorld, SimNetSbcWorld};
use sbc_net::TcpSbcWorld;
use sbc_net::{Endpoint, Frame, FrameKind, TransportStats};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::{CompareLevel, DualRun, SbcWorld};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::AdvCommand;

/// One full period on any backend: three submissions, tick to release.
/// Returns the rounds consumed (constant across backends by design).
fn run_period<W: SbcBackend + SbcWorld>(n: usize, seed: &[u8]) -> (u64, W) {
    let params = SbcParams::default_for(n);
    let mut w = W::from_params(params, seed).expect("valid default params");
    w.input(
        PartyId(0),
        Command::new("Broadcast", Value::bytes(b"bench/a")),
    );
    w.tick();
    w.input(
        PartyId(1),
        Command::new("Broadcast", Value::bytes(b"bench/b")),
    );
    w.input(
        PartyId((n - 1) as u32),
        Command::new("Broadcast", Value::bytes(b"bench/c")),
    );
    let rounds = params.phi + params.delta + 2;
    for _ in 0..rounds {
        w.tick();
    }
    let outs = w.drain_outputs();
    assert_eq!(outs.len(), n, "every party releases");
    (1 + rounds, w)
}

/// The determinism gate: `Exact` transcripts, adversarial schedule,
/// adaptive corruption, injected broadcast. Panics (non-zero exit) on
/// divergence.
fn determinism_gate(n: usize) {
    let params = SbcParams::default_for(n);
    let seed = b"net-bench-gate";
    let real = RealSbcWorld::from_params(params, seed).expect("valid");
    let net = SimNetSbcWorld::from_params(params, seed).expect("valid");
    let mut dual = DualRun::new(real, net, CompareLevel::Exact);
    let mut adv_rng = Drbg::from_seed(b"net-bench-gate/adversary");

    dual.submit(PartyId(0), b"gate/a");
    dual.advance_all();
    dual.corrupt(PartyId(1));
    dual.submit(PartyId(2), b"gate/b");
    // Adversarial injection through the corrupted party.
    let tau_rel = dual.release_round().expect("period open");
    let ct = Value::bytes(adv_rng.gen_bytes(64));
    let rho = adv_rng.gen_bytes(32);
    dual.adversary(AdvCommand::Control {
        target: "F_TLE".into(),
        cmd: Command::new(
            "Insert",
            Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
        ),
    });
    let m_bytes = Value::bytes(b"gate/evil").encode();
    let (eta, _) = dual.adversary(AdvCommand::Control {
        target: "F_RO".into(),
        cmd: Command::new(
            "QueryBytes",
            Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
        ),
    });
    let eta = eta.as_bytes().expect("mask is bytes").to_vec();
    let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
    dual.adversary(AdvCommand::SendAs {
        party: PartyId(1),
        cmd: Command::new("Broadcast", sbc_wire(&ct, tau_rel, &y)),
    });
    dual.idle_rounds(10);
    dual.finish_epoch().unwrap_or_else(|d| {
        panic!("networked backend diverged from the in-process world at n={n}: {d}")
    });
    // Second epoch: the gate covers period turnover too.
    dual.submit(PartyId(0), b"gate/e1");
    dual.idle_rounds(9);
    dual.finish_epoch()
        .unwrap_or_else(|d| panic!("divergence in epoch 1 at n={n}: {d}"));
    let stats = dual.worlds().1.transport_stats();
    assert!(
        stats.delayed > 0 && stats.duplicated > 0,
        "gate chaos schedule fired: {stats:?}"
    );
}

/// The TCP determinism gate: the same Exact transcript demand, but with
/// every frame crossing OS loopback sockets. Kept at n=8 — the point is
/// conformance over real sockets, not socket-count scaling.
fn tcp_gate(n: usize) {
    let params = SbcParams::default_for(n);
    let seed = b"net-bench-tcp-gate";
    let real = RealSbcWorld::from_params(params, seed).expect("valid");
    let tcp = TcpSbcWorld::from_params(params, seed).expect("tcp backend binds");
    let mut dual = DualRun::new(real, tcp, CompareLevel::Exact);
    dual.submit(PartyId(0), b"gate/a");
    dual.advance_all();
    dual.corrupt(PartyId(1));
    dual.submit(PartyId(2), b"gate/b");
    dual.idle_rounds(10);
    dual.finish_epoch()
        .unwrap_or_else(|d| panic!("TCP backend diverged from the in-process world at n={n}: {d}"));
    dual.submit(PartyId(3), b"gate/e1");
    dual.idle_rounds(9);
    dual.finish_epoch()
        .unwrap_or_else(|d| panic!("TCP divergence in epoch 1 at n={n}: {d}"));
    let stats = dual.worlds().1.transport_stats();
    assert!(
        stats.delivered > 0 && stats.bytes > 0,
        "frames crossed sockets"
    );
    assert_eq!(stats.decode_errors, 0, "clean framing on every lane");
    assert_eq!(stats.timeouts, 0, "no deadline concessions on loopback");
}

fn main() {
    // ---- determinism gates (before any measurement) ----
    for n in [8usize, 64] {
        determinism_gate(n);
    }
    println!("determinism gate: networked transcripts == in-process at Exact (n=8 and n=64)");
    tcp_gate(8);
    println!("tcp gate: real-socket transcripts == in-process at Exact (n=8)");

    let mut records = Vec::new();

    // ---- codec throughput ----
    let g = harness::group("sbc_net_codec");
    let mut rng = Drbg::from_seed(b"net-bench/codec");
    let wire = Frame {
        from: Endpoint::Host,
        to: Endpoint::Party(3),
        sent_at: 4,
        kind: FrameKind::Deliver {
            origin: 1,
            payload: sbc_wire(&Value::bytes(rng.gen_bytes(64)), 5, &rng.gen_bytes(48)),
        },
    };
    let encoded = wire.encode();
    let stats = g.bench("encode/wire", || wire.encode());
    let frame_bytes = encoded.len();
    records.push(harness::Record {
        group: "sbc_net_codec".into(),
        label: "encode/wire".into(),
        metrics: vec![
            ("frame_bytes".into(), frame_bytes as f64),
            ("frames_per_sec".into(), 1e9 / stats.median_ns),
        ],
        stats,
    });
    let stats = g.bench("decode/wire", || Frame::decode(&encoded).expect("valid"));
    records.push(harness::Record {
        group: "sbc_net_codec".into(),
        label: "decode/wire".into(),
        metrics: vec![
            ("frame_bytes".into(), frame_bytes as f64),
            ("frames_per_sec".into(), 1e9 / stats.median_ns),
        ],
        stats,
    });

    // ---- world throughput: in-process vs loopback vs SimNet ----
    let g = harness::group("sbc_net_world");
    for n in [8usize, 64] {
        // The in-process reference row.
        let label = format!("n={n}/in-process");
        let (rounds, _) = run_period::<RealSbcWorld>(n, b"net-bench/world");
        let stats = g.bench(&label, || run_period::<RealSbcWorld>(n, b"net-bench/world"));
        let party_rounds_per_sec = (n as f64 * rounds as f64) * 1e9 / stats.median_ns;
        println!(
            "{:<40} {:>14.0} party-rounds/s",
            format!("sbc_net_world/{label}"),
            party_rounds_per_sec
        );
        records.push(harness::Record {
            group: "sbc_net_world".into(),
            label,
            metrics: vec![
                ("parties".into(), n as f64),
                ("rounds".into(), rounds as f64),
                ("party_rounds_per_sec".into(), party_rounds_per_sec),
            ],
            stats,
        });

        // The two networked rows, with transport traffic recorded.
        let mut rows: Vec<(&str, TransportStats, u64, harness::Stats)> = Vec::new();
        {
            let (rounds, w) = run_period::<LoopbackSbcWorld>(n, b"net-bench/world");
            let stats = g.bench(&format!("n={n}/loopback"), || {
                run_period::<LoopbackSbcWorld>(n, b"net-bench/world")
            });
            rows.push(("loopback", w.transport_stats(), rounds, stats));
        }
        {
            let (rounds, w) = run_period::<SimNetSbcWorld>(n, b"net-bench/world");
            let stats = g.bench(&format!("n={n}/simnet"), || {
                run_period::<SimNetSbcWorld>(n, b"net-bench/world")
            });
            rows.push(("simnet", w.transport_stats(), rounds, stats));
        }
        if n == 8 {
            // Real sockets measured at n=8 only: each period brings up
            // (and tears down) 1 + 2n loopback connections, so larger n
            // measures the OS accept path, not the protocol.
            let (rounds, w) = run_period::<TcpSbcWorld>(n, b"net-bench/world");
            let stats = g.bench(&format!("n={n}/tcp"), || {
                run_period::<TcpSbcWorld>(n, b"net-bench/world")
            });
            rows.push(("tcp", w.transport_stats(), rounds, stats));
        }
        for (name, t, rounds, stats) in rows {
            let label = format!("n={n}/{name}");
            let party_rounds_per_sec = (n as f64 * rounds as f64) * 1e9 / stats.median_ns;
            let frames_per_period = t.delivered as f64;
            println!(
                "{:<40} {:>14.0} party-rounds/s  ({} frames, {} wire bytes)",
                format!("sbc_net_world/{label}"),
                party_rounds_per_sec,
                t.delivered,
                t.bytes
            );
            records.push(harness::Record {
                group: "sbc_net_world".into(),
                label,
                metrics: vec![
                    ("parties".into(), n as f64),
                    ("rounds".into(), rounds as f64),
                    ("party_rounds_per_sec".into(), party_rounds_per_sec),
                    ("frames_per_period".into(), frames_per_period),
                    ("wire_bytes_per_period".into(), t.bytes as f64),
                    ("frames_delayed".into(), t.delayed as f64),
                    ("frames_duplicated".into(), t.duplicated as f64),
                ],
                stats,
            });
        }
    }

    // The gate verdicts travel with the report: 1.0 means the Exact
    // comparison passed for every gated n (reaching this line proves it —
    // a divergence panics above).
    records.push(harness::Record {
        group: "sbc_net_gate".into(),
        label: "exact-conformance".into(),
        stats: harness::Stats {
            median_ns: 0.0,
            mean_ns: 0.0,
            iters: 0,
        },
        metrics: vec![
            ("gate_exact_passed".into(), 1.0),
            ("gated_n_min".into(), 8.0),
            ("gated_n_max".into(), 64.0),
        ],
    });
    records.push(harness::Record {
        group: "sbc_net_gate".into(),
        label: "tcp-exact-conformance".into(),
        stats: harness::Stats {
            median_ns: 0.0,
            mean_ns: 0.0,
            iters: 0,
        },
        metrics: vec![
            ("gate_tcp_exact_passed".into(), 1.0),
            ("gated_n".into(), 8.0),
        ],
    });

    let path = std::env::var("SBC_BENCH_JSON").unwrap_or_else(|_| "BENCH_net.json".to_string());
    harness::write_json_report(&path, &records).expect("write BENCH_net.json");
    println!("\nwrote {path} ({} records)", records.len());
}
