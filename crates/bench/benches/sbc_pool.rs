//! `sbc_pool_scaling`: shared-clock throughput of the instance pool as the
//! number of concurrent SBC instances grows (1 → 8 → 64), measured on the
//! serial reference scheduler and a worker-count sweep of the parallel
//! scheduler (`threads ∈ {1, 2}` in smoke mode, plus the detected core
//! count on a full run), plus `sbc_pool_open`: the cost of opening an
//! instance on a long-lived pool (`T ∈ {0, 1024}`).
//!
//! Each scaling iteration builds a pool, opens `k` instances, submits one
//! message per instance, and batch-steps the shared clock until every
//! instance has released. The headline metric is **instance-rounds per
//! second** — how many (instance × round) units of protocol work the pool
//! executes per wall-clock second. The serial rows are the reference loop;
//! the parallel rows fan the per-tick instance work out across persistent
//! executor workers and should scale toward linear with the core count on
//! a multi-core host (on a single-core host they mostly pay thread
//! overhead — every row records the `threads` it ran with and the `cores`
//! the host actually had, so a report always says which regime it came
//! from).
//!
//! **Determinism gate:** before measuring anything, the run asserts that
//! the parallel scheduler's full release stream (order included) is
//! identical to the serial one at 8 and 64 instances, and exits non-zero
//! otherwise — the CI smoke step therefore fails on any ordering
//! divergence.
//!
//! The `sbc_pool_open` group pins the `open_instance` cost at pool round
//! `T = 0` and `T = 1024`: with the O(1) clock-offset join the two must be
//! in the same ballpark (the old idle-round replay made `T = 1024` several
//! orders of magnitude slower).
//!
//! The run also writes a machine-readable `BENCH_pool.json` next to the
//! working directory (the CI smoke step archives it).

use sbc_bench::harness;
use sbc_core::api::SbcResult;
use sbc_core::pool::{InstanceId, PooledSbcWorld, SbcPool, TickMode};
use sbc_core::worlds::{RealSbcWorld, SbcParams};

const PARTIES: usize = 4;

/// Runs one full pool cycle; returns the shared clock ticks used and the
/// complete release stream (instance + result, in release order).
fn run_pool(instances: usize, mode: TickMode) -> (u64, Vec<(InstanceId, SbcResult)>) {
    let mut pool = SbcPool::builder(PARTIES)
        .seed(b"pool-bench")
        .tick_mode(mode)
        .build()
        .expect("valid params");
    let ids: Vec<_> = (0..instances)
        .map(|_| pool.open_instance().expect("backend builds"))
        .collect();
    for (k, id) in ids.iter().enumerate() {
        pool.submit(*id, (k % PARTIES) as u32, format!("lot-{k}").as_bytes())
            .expect("in period");
    }
    let mut releases = Vec::new();
    let mut rounds = 0u64;
    while releases.len() < instances {
        releases.extend(pool.step_round().expect("no invariant breaks"));
        rounds += 1;
        assert!(rounds < 64, "pool failed to release");
    }
    (rounds, releases)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Thread sweep for the parallel scheduler: smoke mode pins {1, 2} (a
    // bit-rot check must not depend on the runner's core count); a full
    // run adds the detected core count so multi-core hardware reports its
    // real parallel scaling.
    let mut sweep: Vec<usize> = vec![1, 2];
    if !harness::smoke_mode() && cores > 2 {
        sweep.push(cores);
    }

    // Determinism gate: every parallel scheduler configuration must
    // reproduce the serial release stream bit for bit (results AND
    // order). A divergence panics, which fails the CI smoke step.
    for instances in [8usize, 64] {
        let (_, serial) = run_pool(instances, TickMode::Serial);
        let (_, parallel) = run_pool(instances, TickMode::Parallel);
        assert_eq!(
            serial, parallel,
            "parallel tick_all diverged from the serial reference at {instances} instances"
        );
        for &t in &sweep {
            let (_, threaded) = run_pool(instances, TickMode::Threads(t));
            assert_eq!(
                serial, threaded,
                "Threads({t}) tick_all diverged from the serial reference at \
                 {instances} instances"
            );
        }
    }
    println!(
        "determinism gate: parallel release stream == serial \
         (8 and 64 instances, threads ∈ {sweep:?})"
    );

    let g = harness::group("sbc_pool_scaling");
    let mut records = Vec::new();
    for instances in [1usize, 8, 64] {
        let mut serial_median = 0.0f64;
        let configs = std::iter::once(None).chain(sweep.iter().copied().map(Some));
        for threads in configs {
            let (mode, label) = match threads {
                Some(t) => (
                    TickMode::Threads(t),
                    format!("instances={instances}/parallel/t={t}"),
                ),
                None => (TickMode::Serial, format!("instances={instances}/serial")),
            };
            let (rounds, _) = run_pool(instances, mode);
            let stats = g.bench(&label, || run_pool(instances, mode));
            let instance_rounds_per_sec =
                (instances as f64 * rounds as f64) * 1e9 / stats.median_ns;
            let rounds_per_sec = rounds as f64 * 1e9 / stats.median_ns;
            let mut metrics = vec![
                ("instances".into(), instances as f64),
                ("rounds".into(), rounds as f64),
                ("rounds_per_sec".into(), rounds_per_sec),
                ("instance_rounds_per_sec".into(), instance_rounds_per_sec),
                ("parallel".into(), f64::from(u8::from(threads.is_some()))),
                ("threads".into(), threads.unwrap_or(1) as f64),
                ("cores".into(), cores as f64),
            ];
            match threads {
                Some(_) => {
                    let speedup = serial_median / stats.median_ns;
                    metrics.push(("speedup_vs_serial".into(), speedup));
                    println!(
                        "{:<48} {:>14.0} instance-rounds/s   speedup vs serial: {:.2}x",
                        format!("sbc_pool_scaling/{label}"),
                        instance_rounds_per_sec,
                        speedup
                    );
                }
                None => {
                    serial_median = stats.median_ns;
                    println!(
                        "{:<48} {:>14.0} instance-rounds/s",
                        format!("sbc_pool_scaling/{label}"),
                        instance_rounds_per_sec
                    );
                }
            }
            records.push(harness::Record {
                group: "sbc_pool_scaling".into(),
                label,
                stats,
                metrics,
            });
        }
    }

    // Open-instance cost on a long-lived pool: with the O(1) offset join
    // the cost at T = 1024 matches T = 0 instead of scaling with T.
    let g2 = harness::group("sbc_pool_open");
    for t in [0u64, 1024] {
        let mut world = PooledSbcWorld::<RealSbcWorld>::new(
            SbcParams::default_for(PARTIES),
            format!("pool-open-{t}").as_bytes(),
        )
        .expect("valid params");
        for _ in 0..t {
            world.tick_all();
        }
        let label = format!("T={t}");
        let stats = g2.bench(&label, || {
            let id = world.open_instance().expect("backend builds");
            world.retire(id);
            id
        });
        records.push(harness::Record {
            group: "sbc_pool_open".into(),
            label,
            stats,
            metrics: vec![
                ("pool_round".into(), t as f64),
                ("cores".into(), cores as f64),
            ],
        });
    }

    // Default target is the bench cwd (the sbc-bench package root);
    // SBC_BENCH_JSON overrides it, which CI uses to surface the artifact.
    let path = std::env::var("SBC_BENCH_JSON").unwrap_or_else(|_| "BENCH_pool.json".to_string());
    harness::write_json_report(&path, &records).expect("write BENCH_pool.json");
    println!("\nwrote {path} ({} records)", records.len());
}
