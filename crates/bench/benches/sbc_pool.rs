//! `sbc_pool_scaling`: shared-clock throughput of the instance pool as the
//! number of concurrent SBC instances grows (1 → 8 → 64).
//!
//! Each iteration builds a pool, opens `k` instances, submits one message
//! per instance, and batch-steps the shared clock until every instance has
//! released. The headline metric is **instance-rounds per second** — how
//! many (instance × round) units of protocol work the pool executes per
//! wall-clock second — which should scale close to linearly while the
//! per-instance cost stays flat.
//!
//! The run also writes a machine-readable `BENCH_pool.json` next to the
//! working directory (the CI smoke step archives it).

use sbc_bench::harness;
use sbc_core::pool::SbcPool;

const PARTIES: usize = 4;

/// Runs one full pool cycle; returns the number of shared clock ticks.
fn run_pool(instances: usize) -> u64 {
    let mut pool = SbcPool::builder(PARTIES)
        .seed(b"pool-bench")
        .build()
        .expect("valid params");
    let ids: Vec<_> = (0..instances).map(|_| pool.open_instance()).collect();
    for (k, id) in ids.iter().enumerate() {
        pool.submit(*id, (k % PARTIES) as u32, format!("lot-{k}").as_bytes())
            .expect("in period");
    }
    let mut released = 0;
    let mut rounds = 0u64;
    while released < instances {
        released += pool.step_round().expect("no invariant breaks").len();
        rounds += 1;
        assert!(rounds < 64, "pool failed to release");
    }
    rounds
}

fn main() {
    let g = harness::group("sbc_pool_scaling");
    let mut records = Vec::new();
    for instances in [1usize, 8, 64] {
        let label = format!("instances={instances}");
        let rounds = run_pool(instances);
        let stats = g.bench(&label, || run_pool(instances));
        let instance_rounds_per_sec = (instances as f64 * rounds as f64) * 1e9 / stats.median_ns;
        let rounds_per_sec = rounds as f64 * 1e9 / stats.median_ns;
        println!(
            "{:<40} {:>14.0} instance-rounds/s",
            format!("sbc_pool_scaling/{label}"),
            instance_rounds_per_sec
        );
        records.push(harness::Record {
            group: "sbc_pool_scaling".into(),
            label,
            stats,
            metrics: vec![
                ("instances".into(), instances as f64),
                ("rounds".into(), rounds as f64),
                ("rounds_per_sec".into(), rounds_per_sec),
                ("instance_rounds_per_sec".into(), instance_rounds_per_sec),
            ],
        });
    }
    // Default target is the bench cwd (the sbc-bench package root);
    // SBC_BENCH_JSON overrides it, which CI uses to surface the artifact.
    let path = std::env::var("SBC_BENCH_JSON").unwrap_or_else(|_| "BENCH_pool.json".to_string());
    harness::write_json_report(&path, &records).expect("write BENCH_pool.json");
    println!("\nwrote {path} ({} records)", records.len());
}
