//! `sbc_service_load`: the million-submitter sustained-load run for the
//! `sbc-service` layer, plus steady-state tick cost and snapshot/restore
//! cost groups.
//!
//! The headline experiment plays a seeded [`LoadGen`] of **1,000,000
//! submissions** (20k under `SBC_BENCH_SMOKE=1`) through a beacon-mode
//! service at ~512 submissions per driver tick, draining releases each
//! tick the way a real consumer would. It is a single timed pass — the
//! interesting quantities are sustained throughput and the shape of the
//! submit→release latency distribution, not a median over repeats — so
//! the record's `median_ns`/`mean_ns` are the elapsed wall-clock of that
//! one pass with `iters = 1`.
//!
//! **SLO + flatness gates (panic → CI smoke fails):**
//!
//! * every generated submission is accepted and released
//!   (`latency.count == total`);
//! * live instances never exceed `max_live` (admission backpressure
//!   holds);
//! * after shutdown the pool footprint is exactly
//!   [`PoolFootprint::default()`] — continuous prune kept steady-state
//!   memory flat, nothing leaked over ~2000 epochs of churn.
//!
//! Recorded metrics: submissions/s, instance-rounds/s (protocol work
//! executed, accumulated from the live-instance count each tick),
//! latency p50/p90/p99/max in rounds, peak live instances, peak queue
//! depth, and the leak-overflow counter for the capped observability
//! ring.
//!
//! The two harness-measured groups pin the per-tick cost of a saturated
//! service and the cost of a snapshot round-trip at a realistic journal
//! size. The `sbc_service_era` group is the **snapshot-growth gate**: it
//! runs ≥3 checkpointed eras side by side with a never-checkpointing
//! twin and panics unless the era-based image size and restore op-count
//! stay flat while the twin's full-journal image keeps growing —
//! `snapshot_bytes_per_era` and `restore_ops` land in the JSON report.
//! The run writes `BENCH_service.json` (`SBC_BENCH_JSON` overrides the
//! path; CI archives it).

use sbc_bench::harness;
use sbc_core::pool::PoolFootprint;
use sbc_core::worlds::RealSbcWorld;
use sbc_service::{DeadlineClass, LoadGen, LoadProfile, SbcService, ServiceConfig, ServiceMode};

const PARTIES: usize = 4;

fn service_config(seed: &[u8]) -> ServiceConfig {
    ServiceConfig::new(PARTIES, ServiceMode::Beacon)
        .seed(seed)
        .queue_cap(65_536)
        .batch_size(64)
        .max_live(64)
        .flush_after(4)
}

/// One driver step of the canonical consumer loop: feed the generator's
/// tick into the queue, step the service, drain what released. Returns
/// (submissions released this tick, live instances after the tick).
fn consume_tick(svc: &mut SbcService<RealSbcWorld>, gen: &mut LoadGen) -> (u64, usize) {
    for s in gen.next_tick() {
        svc.submit(s.client, s.payload, s.class)
            .expect("load sized under queue_cap");
    }
    svc.tick().expect("tick");
    let released: usize = svc.drain_releases().iter().map(|r| r.tickets.len()).sum();
    (released as u64, svc.live())
}

fn main() {
    let smoke = harness::smoke_mode();
    let total: u64 = if smoke { 20_000 } else { 1_000_000 };
    let per_tick = 512;
    let mut records = Vec::new();

    // ── Headline: the sustained-load single pass ──────────────────────
    let mut svc: SbcService<RealSbcWorld> =
        SbcService::new(service_config(b"service-bench")).expect("valid config");
    let mut gen = LoadGen::new(LoadProfile::beacon(total, per_tick), b"service-bench");

    let mut released = 0u64;
    let mut ticks = 0u64;
    let mut instance_rounds = 0u64;
    let start = std::time::Instant::now();
    while released < total {
        let (r, live) = consume_tick(&mut svc, &mut gen);
        released += r;
        instance_rounds += live as u64;
        ticks += 1;
        let max_live = 64;
        assert!(
            live <= max_live,
            "admission backpressure violated: {live} live > max_live {max_live}"
        );
        assert!(ticks < total, "service failed to keep up with the load");
    }
    svc.shutdown().expect("drains within budget");
    let elapsed_ns = start.elapsed().as_nanos() as f64;

    let stats = svc.stats();
    assert_eq!(stats.accepted, total, "every submission accepted");
    assert_eq!(stats.latency.count, total, "every submission released");
    assert_eq!(
        svc.footprint(),
        PoolFootprint::default(),
        "steady-state memory not flat: pool footprint nonzero after drain"
    );

    let submissions_per_sec = total as f64 * 1e9 / elapsed_ns;
    let instance_rounds_per_sec = instance_rounds as f64 * 1e9 / elapsed_ns;
    println!(
        "sbc_service_load/total={total}: {:.3} s, {:.0} submissions/s, {:.0} instance-rounds/s",
        elapsed_ns / 1e9,
        submissions_per_sec,
        instance_rounds_per_sec
    );
    println!(
        "  latency (rounds): p50={} p90={} p99={} max={} | instances={} ticks={ticks} peak_live={} peak_queue={} leak_overflow={}",
        stats.latency.p50,
        stats.latency.p90,
        stats.latency.p99,
        stats.latency.max,
        stats.finished,
        stats.peak_live,
        stats.peak_queue,
        stats.leak_overflow,
    );
    records.push(harness::Record {
        group: "sbc_service_load".into(),
        label: format!("total={total}"),
        stats: harness::Stats {
            median_ns: elapsed_ns,
            mean_ns: elapsed_ns,
            iters: 1,
        },
        metrics: vec![
            ("total_submissions".into(), total as f64),
            ("per_tick".into(), per_tick as f64),
            ("submissions_per_sec".into(), submissions_per_sec),
            ("instance_rounds_per_sec".into(), instance_rounds_per_sec),
            ("instances_finished".into(), stats.finished as f64),
            ("ticks".into(), ticks as f64),
            ("latency_p50_rounds".into(), stats.latency.p50 as f64),
            ("latency_p90_rounds".into(), stats.latency.p90 as f64),
            ("latency_p99_rounds".into(), stats.latency.p99 as f64),
            ("latency_max_rounds".into(), stats.latency.max as f64),
            ("peak_live".into(), stats.peak_live as f64),
            ("peak_queue".into(), stats.peak_queue as f64),
            ("leak_overflow".into(), stats.leak_overflow as f64),
        ],
    });

    // ── Steady-state tick cost on a saturated service ─────────────────
    // The generator never runs dry inside the measurement, so every
    // timed tick does full admission + step + drain work.
    let g = harness::group("sbc_service_tick");
    let mut svc: SbcService<RealSbcWorld> =
        SbcService::new(service_config(b"service-tick")).expect("valid config");
    let mut gen = LoadGen::new(LoadProfile::beacon(u64::MAX / 2, per_tick), b"service-tick");
    for _ in 0..32 {
        consume_tick(&mut svc, &mut gen); // reach steady state first
    }
    let tick_stats = g.bench("saturated/per_tick=512", || {
        consume_tick(&mut svc, &mut gen)
    });
    records.push(harness::Record {
        group: "sbc_service_tick".into(),
        label: "saturated/per_tick=512".into(),
        stats: tick_stats,
        metrics: vec![
            ("per_tick".into(), per_tick as f64),
            (
                "submissions_per_sec".into(),
                per_tick as f64 * 1e9 / tick_stats.median_ns,
            ),
        ],
    });

    // ── Snapshot / restore cost at a realistic journal size ───────────
    let g = harness::group("sbc_service_snapshot");
    let mut svc: SbcService<RealSbcWorld> =
        SbcService::new(service_config(b"service-snap")).expect("valid config");
    let mut gen = LoadGen::new(LoadProfile::beacon(4_096, 64), b"service-snap");
    while !gen.done() {
        consume_tick(&mut svc, &mut gen);
    }
    let image = svc.snapshot().expect("snapshot");
    let journal_ops = 4_096 + svc.stats().ticks;
    let snap_stats = g.bench("snapshot/ops~4k", || svc.snapshot().expect("snapshot"));
    records.push(harness::Record {
        group: "sbc_service_snapshot".into(),
        label: "snapshot/ops~4k".into(),
        stats: snap_stats,
        metrics: vec![
            ("image_bytes".into(), image.len() as f64),
            ("journal_ops".into(), journal_ops as f64),
        ],
    });
    let restore_stats = g.bench("restore/ops~4k", || {
        SbcService::<RealSbcWorld>::restore(&image).expect("restore")
    });
    records.push(harness::Record {
        group: "sbc_service_snapshot".into(),
        label: "restore/ops~4k".into(),
        stats: restore_stats,
        metrics: vec![
            ("image_bytes".into(), image.len() as f64),
            ("journal_ops".into(), journal_ops as f64),
        ],
    });

    // ── Era gate: snapshot size and restore work stay flat ────────────
    // A checkpointing service and a never-checkpointing twin run the
    // identical schedule: per era one wave of submissions drained to a
    // boundary, a fold (on the checkpointing side only), then a fixed
    // mid-epoch tail so every era's image is captured at the same
    // offset. Era-based persistence must keep image bytes and replayed
    // op-count constant per era; the twin's full-journal image must keep
    // growing — both asserted, both recorded.
    let eras = 4usize;
    let wave: u64 = if smoke { 256 } else { 2_048 };
    let mut a: SbcService<RealSbcWorld> =
        SbcService::new(service_config(b"service-era")).expect("valid config");
    let mut b: SbcService<RealSbcWorld> =
        SbcService::new(service_config(b"service-era")).expect("valid config");

    fn run_wave(svc: &mut SbcService<RealSbcWorld>, seed: &[u8], wave: u64) {
        let mut gen = LoadGen::new(LoadProfile::beacon(wave, 64), seed);
        let mut budget = 10_000u64;
        while !gen.done() || svc.live() > 0 || svc.queued() > 0 {
            consume_tick(svc, &mut gen);
            budget -= 1;
            assert!(budget > 0, "era wave failed to drain");
        }
    }

    let mut bytes_a = Vec::new();
    let mut bytes_b = Vec::new();
    let mut ops_a = Vec::new();
    for era in 1..=eras {
        let seed = format!("service-era-wave-{era}");
        run_wave(&mut a, seed.as_bytes(), wave);
        run_wave(&mut b, seed.as_bytes(), wave);
        assert!(a.try_checkpoint(), "drained service sits at a boundary");
        assert_eq!(a.era() as usize, era);
        // The fixed post-boundary tail: every era's image carries the
        // same mid-epoch state on top of its checkpoint.
        for svc in [&mut a, &mut b] {
            for i in 0..8u64 {
                svc.submit(i, vec![0x5A; 32], DeadlineClass::Standard)
                    .expect("tail submit");
            }
            svc.tick().expect("tick");
            svc.tick().expect("tick");
        }

        let start = std::time::Instant::now();
        let img_a = a.snapshot().expect("snapshot");
        let snap_ns = start.elapsed().as_nanos() as f64;
        let img_b = b.snapshot().expect("twin snapshot");
        let start = std::time::Instant::now();
        let restored = SbcService::<RealSbcWorld>::restore(&img_a).expect("restore");
        let restore_ns = start.elapsed().as_nanos() as f64;
        let restore_ops = restored.stats().journal_ops;
        let (mut sa, mut sr) = (a.stats(), restored.stats());
        sa.snapshot_bytes = 0;
        sr.snapshot_bytes = 0;
        sa.wall = None;
        sr.wall = None;
        assert_eq!(sa, sr, "era {era}: restored twin diverged");

        bytes_a.push(img_a.len());
        bytes_b.push(img_b.len());
        ops_a.push(restore_ops);
        records.push(harness::Record {
            group: "sbc_service_era".into(),
            label: format!("era={era}/wave={wave}"),
            stats: harness::Stats {
                median_ns: snap_ns,
                mean_ns: snap_ns,
                iters: 1,
            },
            metrics: vec![
                ("snapshot_bytes_per_era".into(), img_a.len() as f64),
                ("restore_ops".into(), restore_ops as f64),
                ("restore_ns".into(), restore_ns),
                ("full_journal_bytes".into(), img_b.len() as f64),
            ],
        });
    }
    for k in 1..eras {
        // U64 fields are fixed-width in the canonical encoding, so the
        // per-era image is byte-flat; the slack only covers a future
        // variable-width encoding.
        let drift = (bytes_a[k] as i64 - bytes_a[0] as i64).unsigned_abs();
        assert!(
            drift <= 64,
            "era snapshot not flat: era {} is {}B vs era 1's {}B",
            k + 1,
            bytes_a[k],
            bytes_a[0]
        );
        assert_eq!(
            ops_a[k], ops_a[0],
            "restore op-count must not grow with era"
        );
        assert!(
            bytes_b[k] > bytes_b[k - 1],
            "the no-checkpoint twin's image must keep growing"
        );
    }
    println!(
        "sbc_service_era: {} eras, era image {}B flat (twin grew {}B → {}B), restore replays {} ops/era",
        eras, bytes_a[0], bytes_b[0], bytes_b[eras - 1], ops_a[0]
    );

    let path = std::env::var("SBC_BENCH_JSON").unwrap_or_else(|_| "BENCH_service.json".to_string());
    harness::write_json_report(&path, &records).expect("write BENCH_service.json");
    println!("\nwrote {path} ({} records)", records.len());
}
