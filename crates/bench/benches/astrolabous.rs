//! E4/E9: Astrolabous encryption and (sequential) solving cost vs the
//! difficulty τ_dec and per-round budget q.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbc_primitives::astrolabous::{ast_enc, ast_solve_and_dec};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::sha256::Sha256;
use std::time::Duration;

fn bench_enc(c: &mut Criterion) {
    let h = |x: &[u8]| Sha256::digest(x);
    let mut g = c.benchmark_group("ast_enc_q16");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    for tau in [1u64, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, &tau| {
            let mut rng = Drbg::from_seed(b"enc");
            b.iter(|| ast_enc(&h, b"thirty-two byte message padding!", tau, 16, &mut rng))
        });
    }
    g.finish();
}

fn bench_solve(c: &mut Criterion) {
    let h = |x: &[u8]| Sha256::digest(x);
    let mut g = c.benchmark_group("ast_solve_q16");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    for tau in [1u64, 4, 16] {
        let mut rng = Drbg::from_seed(b"solve");
        let ct = ast_enc(&h, b"payload", tau, 16, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(tau), &ct, |b, ct| {
            b.iter(|| ast_solve_and_dec(&h, ct).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_enc, bench_solve);
criterion_main!(benches);
