//! E4/E9: Astrolabous encryption and (sequential) solving cost vs the
//! difficulty τ_dec and per-round budget q.

use sbc_bench::harness;
use sbc_primitives::astrolabous::{ast_enc, ast_solve_and_dec};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::sha256::Sha256;

fn main() {
    let h = |x: &[u8]| Sha256::digest(x);

    let g = harness::group("ast_enc_q16");
    for tau in [1u64, 4, 16] {
        let mut rng = Drbg::from_seed(b"enc");
        g.bench(&format!("tau={tau}"), || {
            ast_enc(&h, b"thirty-two byte message padding!", tau, 16, &mut rng)
        });
    }

    let g = harness::group("ast_solve_q16");
    for tau in [1u64, 4, 16] {
        let mut rng = Drbg::from_seed(b"solve");
        let ct = ast_enc(&h, b"payload", tau, 16, &mut rng);
        g.bench(&format!("tau={tau}"), || {
            ast_solve_and_dec(&h, &ct).unwrap()
        });
    }
}
