//! E9: microbenchmarks of the from-scratch crypto substrate.

use sbc_bench::harness;
use sbc_primitives::drbg::Drbg;
use sbc_primitives::group::SchnorrGroup;
use sbc_primitives::sha256::Sha256;
use sbc_primitives::sigma::{schnorr_prove, schnorr_verify};
use sbc_primitives::wots::SigningKey;

fn main() {
    let g = harness::group("sha256");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xabu8; size];
        g.bench(&format!("{size}B"), || Sha256::digest(&data));
    }

    let g = harness::group("wots");
    g.bench("keygen_h4", || {
        SigningKey::generate(4, &mut Drbg::from_seed(b"bench"))
    });
    let sk = SigningKey::generate(8, &mut Drbg::from_seed(b"bench"));
    let vk = sk.verification_key();
    // WOTS keys are stateful with finite capacity: clone a fresh key per
    // measured iteration.
    g.bench("sign", || {
        let mut k = sk.clone();
        k.sign(b"message").unwrap()
    });
    let mut signer = sk.clone();
    let sig = signer.sign(b"message").unwrap();
    g.bench("verify", || vk.verify(b"message", &sig));

    let g = harness::group("group");
    let grp = SchnorrGroup::default_256();
    let mut rng = Drbg::from_seed(b"grp");
    let x = grp.random_scalar(&mut rng);
    g.bench("exp_256bit", || grp.exp(&grp.generator(), &x));
    g.bench("schnorr_prove", || {
        schnorr_prove(&grp, &grp.generator(), &x, b"bench", &mut rng)
    });
    let h = grp.exp(&grp.generator(), &x);
    let proof = schnorr_prove(&grp, &grp.generator(), &x, b"bench", &mut rng);
    g.bench("schnorr_verify", || {
        schnorr_verify(&grp, &grp.generator(), &h, b"bench", &proof)
    });
}
