//! E9: microbenchmarks of the from-scratch crypto substrate.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::group::SchnorrGroup;
use sbc_primitives::sha256::Sha256;
use sbc_primitives::sigma::{schnorr_prove, schnorr_verify};
use sbc_primitives::wots::SigningKey;
use std::time::Duration;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for size in [64usize, 1024, 16384] {
        let data = vec![0xabu8; size];
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| Sha256::digest(d))
        });
    }
    g.finish();
}

fn bench_wots(c: &mut Criterion) {
    let mut g = c.benchmark_group("wots");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    g.bench_function("keygen_h4", |b| {
        b.iter(|| SigningKey::generate(4, &mut Drbg::from_seed(b"bench")))
    });
    let mut sk = SigningKey::generate(8, &mut Drbg::from_seed(b"bench"));
    let vk = sk.verification_key();
    // WOTS keys are stateful with finite capacity: clone a fresh key per
    // measurement batch.
    g.bench_function("sign", |b| {
        b.iter_batched_ref(
            || sk.clone(),
            |k| k.sign(b"message").unwrap(),
            BatchSize::SmallInput,
        )
    });
    let sig = sk.sign(b"message").unwrap();
    g.bench_function("verify", |b| b.iter(|| vk.verify(b"message", &sig)));
    g.finish();
}

fn bench_group(c: &mut Criterion) {
    let mut g = c.benchmark_group("group");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let grp = SchnorrGroup::default_256();
    let mut rng = Drbg::from_seed(b"grp");
    let x = grp.random_scalar(&mut rng);
    g.bench_function("exp_256bit", |b| b.iter(|| grp.exp(&grp.generator(), &x)));
    g.bench_function("schnorr_prove", |b| {
        b.iter(|| schnorr_prove(&grp, &grp.generator(), &x, b"bench", &mut rng))
    });
    let h = grp.exp(&grp.generator(), &x);
    let proof = schnorr_prove(&grp, &grp.generator(), &x, b"bench", &mut rng);
    g.bench_function("schnorr_verify", |b| {
        b.iter(|| schnorr_verify(&grp, &grp.generator(), &h, b"bench", &proof))
    });
    g.finish();
}

criterion_group!(benches, bench_sha256, bench_wots, bench_group);
criterion_main!(benches);
