//! E6/E7: application-level costs — beacon runs, ballot cryptography,
//! self-tallying.

use sbc_apps::durs::DursSession;
use sbc_apps::voting::{self_tally, Ballot, ElectionSetup};
use sbc_bench::harness;
use sbc_primitives::drbg::Drbg;
use sbc_primitives::group::SchnorrGroup;

fn main() {
    let g = harness::group("durs_session");
    for n in [2usize, 4, 8] {
        g.bench(&format!("n={n}"), || {
            let mut s = DursSession::new(n, b"bench").expect("valid params");
            for p in 0..n {
                s.contribute(p as u32).expect("in period");
            }
            s.finish().expect("terminates")
        });
    }

    let g = harness::group("durs_multi_epoch");
    g.bench("one_session_4_epochs_n4", || {
        let mut s = DursSession::new(4, b"bench-epochs").expect("valid params");
        for _ in 0..4 {
            for p in 0..4 {
                s.contribute(p).expect("in period");
            }
            s.run_epoch().expect("terminates");
        }
    });

    let g = harness::group("ballot");
    let mut rng = Drbg::from_seed(b"ballots");
    let setup = ElectionSetup::generate(SchnorrGroup::default_256(), 8, 2, 3, &mut rng);
    g.bench("cast_256bit", || Ballot::cast(&setup, 0, 1, &mut rng));
    let ballot = Ballot::cast(&setup, 0, 1, &mut rng);
    g.bench("verify_256bit", || ballot.verify(&setup));

    let g = harness::group("self_tally_tiny_group");
    for n in [4usize, 8] {
        let mut rng = Drbg::from_seed(b"tally");
        let setup = ElectionSetup::generate(SchnorrGroup::tiny(), n, 2, 2, &mut rng);
        let ballots: Vec<Ballot> = (0..n)
            .map(|i| Ballot::cast(&setup, i, i % 2, &mut rng))
            .collect();
        g.bench(&format!("n={n}"), || self_tally(&setup, &ballots).unwrap());
    }
}
