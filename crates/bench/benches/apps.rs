//! E6/E7: application-level costs — beacon runs, ballot cryptography,
//! self-tallying.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbc_apps::durs::DursSession;
use sbc_apps::voting::{self_tally, Ballot, ElectionSetup};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::group::SchnorrGroup;
use std::time::Duration;

fn bench_durs(c: &mut Criterion) {
    let mut g = c.benchmark_group("durs_session");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for n in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = DursSession::new(n, b"bench");
                for p in 0..n {
                    s.contribute(p as u32);
                }
                s.finish()
            })
        });
    }
    g.finish();
}

fn bench_ballots(c: &mut Criterion) {
    let mut g = c.benchmark_group("ballot");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    let mut rng = Drbg::from_seed(b"ballots");
    let setup = ElectionSetup::generate(SchnorrGroup::default_256(), 8, 2, 3, &mut rng);
    g.bench_function("cast_256bit", |b| b.iter(|| Ballot::cast(&setup, 0, 1, &mut rng)));
    let ballot = Ballot::cast(&setup, 0, 1, &mut rng);
    g.bench_function("verify_256bit", |b| b.iter(|| ballot.verify(&setup)));
    g.finish();
}

fn bench_tally(c: &mut Criterion) {
    let mut g = c.benchmark_group("self_tally_tiny_group");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    for n in [4usize, 8] {
        let mut rng = Drbg::from_seed(b"tally");
        let setup = ElectionSetup::generate(SchnorrGroup::tiny(), n, 2, 2, &mut rng);
        let ballots: Vec<Ballot> =
            (0..n).map(|i| Ballot::cast(&setup, i, i % 2, &mut rng)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &ballots, |b, ballots| {
            b.iter(|| self_tally(&setup, ballots).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_durs, bench_ballots, bench_tally);
criterion_main!(benches);
