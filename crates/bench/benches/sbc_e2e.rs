//! E5/E8: end-to-end simultaneous broadcast sessions over the full stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbc_core::api::SbcSession;
use std::time::Duration;

fn run_session(n: usize, phi: u64) -> usize {
    let mut s = SbcSession::builder(n).phi(phi).seed(b"bench").build();
    for i in 0..n {
        s.submit(i as u32, format!("message from {i}").as_bytes());
    }
    s.run_to_completion().messages.len()
}

fn bench_sbc_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbc_session_by_n");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for n in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run_session(n, 3))
        });
    }
    g.finish();
}

fn bench_sbc_phi(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbc_session_by_phi");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for phi in [3u64, 6, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(phi), &phi, |b, &phi| {
            b.iter(|| run_session(4, phi))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sbc_n, bench_sbc_phi);
criterion_main!(benches);
