//! E5/E8: end-to-end simultaneous broadcast sessions over the full stack,
//! through the fallible v2 session API.

use sbc_bench::harness;
use sbc_core::api::SbcSession;

fn run_session(n: usize, phi: u64) -> usize {
    let mut s = SbcSession::builder(n)
        .phi(phi)
        .seed(b"bench")
        .build()
        .expect("valid params");
    for i in 0..n {
        s.submit(i as u32, format!("message from {i}").as_bytes())
            .expect("in period");
    }
    s.run_to_completion().expect("terminates").messages.len()
}

fn run_ideal_session(n: usize, phi: u64) -> usize {
    // Same driver, ideal backend: F_SBC + S_SBC instead of the full
    // Π_SBC/F_UBC/F_TLE stack — the cost of the simulation itself.
    let mut s = SbcSession::builder(n)
        .phi(phi)
        .seed(b"bench")
        .build_ideal()
        .expect("valid params");
    for i in 0..n {
        s.submit(i as u32, format!("message from {i}").as_bytes())
            .expect("in period");
    }
    s.run_to_completion().expect("terminates").messages.len()
}

fn run_epochs(n: usize, epochs: u64) -> usize {
    // Multi-epoch amortization: one world stack, `epochs` periods.
    let mut s = SbcSession::builder(n)
        .seed(b"bench-epochs")
        .build()
        .expect("valid params");
    let mut total = 0;
    for e in 0..epochs {
        for i in 0..n {
            s.submit(i as u32, format!("m{e}/{i}").as_bytes())
                .expect("in period");
        }
        total += s.run_epoch().expect("terminates").messages.len();
    }
    total
}

fn main() {
    let g = harness::group("sbc_session_by_n");
    for n in [2usize, 4, 8] {
        g.bench(&format!("n={n}"), || run_session(n, 3));
    }

    let g = harness::group("sbc_session_by_phi");
    for phi in [3u64, 6, 12] {
        g.bench(&format!("phi={phi}"), || run_session(4, phi));
    }

    // Real protocol stack vs ideal F_SBC + simulator, same session driver:
    // how much of the round cost is the hybrid machinery.
    let g = harness::group("sbc_backend_real_vs_ideal");
    for n in [2usize, 4, 8] {
        g.bench(&format!("real/n={n}"), || run_session(n, 3));
        g.bench(&format!("ideal/n={n}"), || run_ideal_session(n, 3));
    }

    // One session running E epochs vs E single-shot sessions: the epoch
    // path skips world construction per period.
    let g = harness::group("sbc_multi_epoch_vs_single_shot");
    for epochs in [1u64, 4, 8] {
        g.bench(&format!("one_session_{epochs}_epochs"), || {
            run_epochs(4, epochs)
        });
        g.bench(&format!("{epochs}_fresh_sessions"), || {
            (0..epochs).map(|_| run_session(4, 3)).sum::<usize>()
        });
    }
}
