//! Experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p sbc-bench --bin experiments -- all
//! cargo run --release -p sbc-bench --bin experiments -- e5
//! ```

use sbc_apps::durs::{last_revealer_attack, last_revealer_attack_on_durs, DursSession, URS_LEN};
use sbc_apps::voting::{BulletinBoardElection, Election};
use sbc_broadcast::fbc::worlds::{IdealFbcWorld, RealFbcWorld};
use sbc_broadcast::rbc::dolev_strong::{bottom, ChainLink, DolevStrong};
use sbc_broadcast::ubc::worlds::{IdealUbcWorld, RealUbcWorld};
use sbc_core::api::SbcSession;
use sbc_core::baseline::{copycat_attack_on_commit_free, copycat_attack_on_sbc, HeviaStyleSbc};
use sbc_core::worlds::{IdealSbcWorld, RealSbcWorld, SbcParams};
use sbc_primitives::astrolabous::{ast_enc, ast_solve_and_dec};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::group::SchnorrGroup;
use sbc_primitives::sha256::Sha256;
use sbc_tle::worlds::{IdealTleWorld, RealTleWorld};
use sbc_uc::cert::IdealCert;
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{run_env, AdvCommand, EnvDriver};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    if all || which == "e1" {
        e1_dolev_strong();
    }
    if all || which == "e2" {
        e2_ubc();
    }
    if all || which == "e3" {
        e3_fbc_fairness();
    }
    if all || which == "e4" {
        e4_tle();
    }
    if all || which == "e5" {
        e5_sbc()?;
    }
    if all || which == "e6" {
        e6_durs()?;
    }
    if all || which == "e7" {
        e7_voting()?;
    }
    if all || which == "e8" {
        e8_composition()?;
    }
    if all || which == "e9" {
        e9_crypto_costs();
    }
    Ok(())
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// E1 — Fact 1: Dolev–Strong realizes relaxed broadcast in t+1 rounds.
fn e1_dolev_strong() {
    header("E1  Dolev-Strong RBC (Fact 1): rounds = t+1, agreement under attack");
    println!(
        "{:>4} {:>4} {:>7} {:>9} {:>10} {:>10} {:>10}",
        "n", "t", "rounds", "msgs", "sig-verif", "agree", "validity"
    );
    for n in [4usize, 8, 16, 32] {
        let t = n - 1;
        let mut rng = Drbg::from_seed(b"e1");
        let certs: Vec<IdealCert> = (0..n as u32)
            .map(|i| IdealCert::new(PartyId(i), rng.fork(&i.to_be_bytes())))
            .collect();
        let mut ds = DolevStrong::new(b"e1".to_vec(), t, PartyId(0), certs);
        ds.start_honest(Value::bytes(b"experiment-1"));
        ds.run_to_completion();
        let outs = ds.outputs();
        let agree = outs.windows(2).all(|w| w[0] == w[1]);
        let valid = outs[1] == Value::bytes(b"experiment-1");
        let (msgs, _, sigs) = ds.stats();
        println!(
            "{:>4} {:>4} {:>7} {:>9} {:>10} {:>10} {:>10}",
            n,
            t,
            ds.round(),
            msgs,
            sigs,
            agree,
            valid
        );
    }
    // Equivocating sender: agreement on ⊥.
    let mut rng = Drbg::from_seed(b"e1b");
    let certs: Vec<IdealCert> = (0..4u32)
        .map(|i| IdealCert::new(PartyId(i), rng.fork(&i.to_be_bytes())))
        .collect();
    let mut ds = DolevStrong::new(b"e1b".to_vec(), 2, PartyId(0), certs);
    ds.corrupt(PartyId(0));
    let m1 = Value::bytes(b"one");
    let m2 = Value::bytes(b"two");
    let s1 = ds.adversary_sign(PartyId(0), m1.clone()).unwrap();
    let s2 = ds.adversary_sign(PartyId(0), m2.clone()).unwrap();
    ds.adversary_send(
        PartyId(0),
        PartyId(1),
        m1,
        vec![ChainLink {
            signer: PartyId(0),
            signature: s1,
        }],
    );
    ds.adversary_send(
        PartyId(0),
        PartyId(2),
        m2,
        vec![ChainLink {
            signer: PartyId(0),
            signature: s2,
        }],
    );
    ds.run_to_completion();
    let outs = ds.outputs();
    println!(
        "equivocating sender: honest outputs agree on ⊥: {}",
        outs[1] == bottom() && outs[2] == bottom() && outs[3] == bottom()
    );
}

/// E2 — Lemma 1: Π_UBC ≈ F_UBC, exact transcript equality over seeds.
fn e2_ubc() {
    header("E2  UBC (Lemma 1): real-vs-ideal transcript equality");
    let mut equal = 0;
    let trials = 20;
    for trial in 0u8..trials {
        let seed = [b'e', b'2', trial];
        let script = move |env: &mut EnvDriver<'_>| {
            let mut plan = Drbg::from_seed(&[b'p', trial]);
            for _ in 0..4 {
                let p = PartyId(plan.gen_range(3) as u32);
                if !env.is_corrupted(p) {
                    env.input(
                        p,
                        Command::new("Broadcast", Value::U64(plan.gen_u64() % 50)),
                    );
                }
                if plan.gen_bool() {
                    let v = PartyId(plan.gen_range(3) as u32);
                    env.adversary(AdvCommand::Corrupt(v));
                }
                env.advance_all();
            }
        };
        let mut real = RealUbcWorld::new(3, &seed);
        let mut ideal = IdealUbcWorld::new(3, &seed);
        if run_env(&mut real, script).digest() == run_env(&mut ideal, script).digest() {
            equal += 1;
        }
    }
    println!("randomized environments with identical transcripts: {equal}/{trials}");
    println!("(paper: simulation is perfect => expected {trials}/{trials})");
}

/// E3 — Lemma 2 + the fairness headline: UBC substitution succeeds, FBC
/// substitution fails once the message left the sender.
fn e3_fbc_fairness() {
    header("E3  FBC (Lemma 2): Delta = 2, alpha = 2; fairness vs UBC");
    let mut real = RealFbcWorld::new(3, 3, b"e3");
    let t = run_env(&mut real, |env| {
        env.input(PartyId(0), Command::new("Broadcast", Value::bytes(b"x")));
        env.idle_rounds(4);
    });
    let delays: Vec<u64> = t.outputs().iter().map(|(r, _, _)| *r).collect();
    println!("FBC delivery rounds for a round-0 broadcast: {delays:?} (paper: Delta = 2)");

    let attack = |env: &mut EnvDriver<'_>| {
        env.input(
            PartyId(0),
            Command::new("Broadcast", Value::bytes(b"original")),
        );
        env.advance_all();
        env.adversary(AdvCommand::Corrupt(PartyId(0)));
        env.adversary(AdvCommand::Control {
            target: "P0".into(),
            cmd: Command::new(
                "Substitute",
                Value::pair(Value::U64(0), Value::bytes(b"evil")),
            ),
        });
        env.idle_rounds(3);
    };
    let mut fbc = RealFbcWorld::new(3, 3, b"e3-fair");
    let t = run_env(&mut fbc, attack);
    let changed = t
        .outputs()
        .iter()
        .any(|(_, _, c)| c.value == Value::bytes(b"evil"));
    println!("FBC: post-broadcast substitution changed delivered value: {changed} (paper: false)");

    let mut ubc = RealUbcWorld::new(3, b"e3-unfair");
    let t = run_env(&mut ubc, |env| {
        env.input(
            PartyId(0),
            Command::new("Broadcast", Value::bytes(b"original")),
        );
        env.adversary(AdvCommand::Corrupt(PartyId(0)));
        env.adversary(AdvCommand::Control {
            target: "F_RBC[P0,1]".into(),
            cmd: Command::new("Allow", Value::bytes(b"evil")),
        });
        env.advance_all();
    });
    let changed = t
        .outputs()
        .iter()
        .any(|(_, _, c)| c.value == Value::bytes(b"evil"));
    println!("UBC: post-input substitution changed delivered value:   {changed} (paper: true)");

    let mut equal = 0;
    for trial in 0u8..10 {
        let seed = [b'e', b'3', trial];
        let script = |env: &mut EnvDriver<'_>| {
            env.input(PartyId(1), Command::new("Broadcast", Value::bytes(b"m")));
            env.idle_rounds(4);
        };
        let mut r = RealFbcWorld::new(3, 3, &seed);
        let mut i = IdealFbcWorld::new(3, 3, &seed);
        if run_env(&mut r, script).digest() == run_env(&mut i, script).digest() {
            equal += 1;
        }
    }
    println!("real-vs-ideal transcript equality: {equal}/10");
}

/// E4 — Theorem 1: TLE timing laws and wrapper-enforced sequentiality.
fn e4_tle() {
    header("E4  TLE (Theorem 1): leak = Cl+alpha, delay = Delta+1, sequentiality");
    let q = 3u32;
    let mut real = RealTleWorld::new(2, q, b"e4");
    run_env(&mut real, |env| {
        env.input(
            PartyId(0),
            Command::new("Enc", Value::pair(Value::bytes(b"capsule"), Value::I64(7))),
        );
        for round in 0..6u64 {
            let r = env.input_collect(PartyId(0), Command::new("Retrieve", Value::Unit));
            let have = r[0].value.as_list().map(|l| l.len()).unwrap_or(0);
            let expected = u64::from(round >= 3);
            println!(
                "  round {round}: Retrieve returns {have} records (delay=Delta+1 => {expected})"
            );
            env.advance_all();
        }
    });
    let mut equal = 0;
    for trial in 0u8..10 {
        let seed = [b'e', b'4', trial];
        let script = |env: &mut EnvDriver<'_>| {
            env.input(
                PartyId(0),
                Command::new("Enc", Value::pair(Value::bytes(b"m"), Value::I64(6))),
            );
            env.idle_rounds(7);
            env.input(PartyId(0), Command::new("Retrieve", Value::Unit));
        };
        let mut r = RealTleWorld::new(2, q, &seed);
        let mut i = IdealTleWorld::new(2, q, &seed);
        if run_env(&mut r, script).shape_digest() == run_env(&mut i, script).shape_digest() {
            equal += 1;
        }
    }
    println!("real-vs-ideal shape equality: {equal}/10");
    println!("sequential solving cost (q*tau hashes, unmetered wall-clock):");
    let h = |x: &[u8]| Sha256::digest(x);
    println!("  {:>6} {:>10} {:>12}", "tau", "hashes", "solve-time");
    for tau in [1u64, 8, 64] {
        let mut rng = Drbg::from_seed(b"e4c");
        let ct = ast_enc(&h, b"m", tau, 16, &mut rng);
        let start = Instant::now();
        ast_solve_and_dec(&h, &ct).unwrap();
        println!(
            "  {:>6} {:>10} {:>10.2?}",
            tau,
            ct.solve_steps(),
            start.elapsed()
        );
    }
}

/// E5 — Theorem 2: SBC latency, liveness, simultaneity, baselines.
fn e5_sbc() -> Result<(), sbc_core::api::SbcError> {
    header("E5  SBC (Theorem 2): latency, liveness, simultaneity");
    println!(
        "{:>4} {:>6} {:>6} {:>9} {:>9}",
        "n", "Phi", "Delta", "released", "msgs"
    );
    for n in [2usize, 4, 8] {
        let mut s = SbcSession::builder(n).seed(b"e5").build()?;
        for i in 0..n {
            s.submit(i as u32, format!("m{i}").as_bytes())?;
        }
        let r = s.run_to_completion()?;
        println!(
            "{:>4} {:>6} {:>6} {:>9} {:>9}",
            n,
            3,
            2,
            r.release_round,
            r.messages.len()
        );
    }
    let mut s = SbcSession::builder(5).seed(b"e5-live").build()?;
    s.submit(0, b"only one")?;
    let r = s.run_to_completion()?;
    println!(
        "partial participation (1/5 senders): released {} msg at round {} (liveness OK)",
        r.messages.len(),
        r.release_round
    );
    let mut hevia = HeviaStyleSbc::new(5);
    hevia.submit(PartyId(0), Value::U64(1));
    for _ in 0..50 {
        assert!(hevia.advance_round().is_none());
    }
    println!("[Hev06]-style baseline, same scenario: blocked for 50+ rounds (no liveness)");
    let naive = copycat_attack_on_commit_free(b"honest bid");
    let sbc1 = copycat_attack_on_sbc(b"e5-cc1", b"honest bid");
    let sbc2 = copycat_attack_on_sbc(b"e5-cc2", b"honest bid");
    println!(
        "copy-cat correlation attack: naive channel {naive}, SBC {}",
        sbc1 || sbc2
    );
    // Multi-epoch amortization: one session, four beacon-style periods.
    let mut s = SbcSession::builder(4).seed(b"e5-epochs").build()?;
    for _ in 0..4 {
        for i in 0..4u32 {
            s.submit(i, format!("epoch-{}/{i}", s.epoch()).as_bytes())?;
        }
        let r = s.run_epoch()?;
        println!(
            "epoch {}: {} msgs released at round {} (same world stack)",
            r.epoch,
            r.messages.len(),
            r.release_round
        );
    }
    let mut shape_eq = 0;
    let mut out_eq = 0;
    for trial in 0u8..10 {
        let seed = [b'e', b'5', trial];
        let script = |env: &mut EnvDriver<'_>| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"alpha")),
            );
            env.advance_all();
            env.input(PartyId(1), Command::new("Broadcast", Value::bytes(b"beta")));
            env.idle_rounds(8);
        };
        let params = SbcParams::default_for(3);
        let mut r = RealSbcWorld::new(params, &seed);
        let mut i = IdealSbcWorld::new(params, &seed);
        let tr = run_env(&mut r, script);
        let ti = run_env(&mut i, script);
        shape_eq += u32::from(tr.shape_digest() == ti.shape_digest());
        out_eq += u32::from(tr.output_digest() == ti.output_digest());
    }
    println!("real-vs-ideal: shape equality {shape_eq}/10, exact output equality {out_eq}/10");
    Ok(())
}

/// E6 — Theorem 3: DURS uniformity and bias-resistance.
fn e6_durs() -> Result<(), sbc_core::api::SbcError> {
    header("E6  DURS (Theorem 3): uniformity and bias-resistance");
    let mut counts = [0u64; 16];
    let mut total = 0u64;
    for i in 0..32u8 {
        let mut s = DursSession::new(3, &[b'e', b'6', i])?;
        for p in 0..3 {
            s.contribute(p)?;
        }
        for byte in s.finish()?.urs {
            counts[(byte >> 4) as usize] += 1;
            counts[(byte & 0xf) as usize] += 1;
            total += 2;
        }
    }
    let expected = total as f64 / 16.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (c as f64 - expected).powi(2) / expected)
        .sum();
    println!("chi^2 over {total} nibbles: {chi2:.2} (df=15, p=0.001 critical 37.70)");
    let target = [0x42u8; URS_LEN];
    let honest = [[0x13u8; URS_LEN]];
    let biased = last_revealer_attack(&honest, &target);
    println!(
        "naive beacon last-revealer attack hits chosen target: {}",
        biased == target.to_vec()
    );
    let mut hits = 0;
    for i in 0..16u8 {
        let (_, hit) = last_revealer_attack_on_durs(&[b'a', i], &target)?;
        hits += u32::from(hit);
    }
    println!("DURS same attack over 16 runs: {hits}/16 hits (paper: bias impossible)");
    Ok(())
}

/// E7 — Theorem 4: self-tallying correctness + fairness.
fn e7_voting() -> Result<(), sbc_apps::voting::VotingError> {
    header("E7  Self-tallying voting (Theorem 4): correctness and fairness");
    println!(
        "{:>7} {:>11} {:>9} {:>12} {:>10}",
        "voters", "candidates", "correct", "accepted", "round"
    );
    for (nv, nc) in [(3usize, 2usize), (7, 2), (5, 3), (9, 2)] {
        let mut e = Election::new(SchnorrGroup::tiny(), nv, nc, b"e7")?;
        let mut expected = vec![0u64; nc];
        for v in 0..nv {
            let c = (v * 3 + 1) % nc;
            expected[c] += 1;
            e.vote(v, c)?;
        }
        let r = e.finish()?;
        println!(
            "{:>7} {:>11} {:>9} {:>12} {:>10}",
            nv,
            nc,
            r.counts == expected,
            r.ballots_accepted,
            r.tally_round
        );
    }
    let mut bb = BulletinBoardElection::new(SchnorrGroup::tiny(), 3, 2, b"e7-bb");
    bb.vote(0, 1);
    bb.vote(1, 1);
    let partial = bb.partial_tally().unwrap();
    println!("bulletin-board baseline mid-phase partial tally: {partial:?} (fairness broken)");
    println!("SBC election: ballots sealed until t_end + Delta (tally round above)");
    Ok(())
}

/// E8 — Corollary 1: the composed stack in the Φ>3, ∆>2 regime.
fn e8_composition() -> Result<(), sbc_core::api::SbcError> {
    header("E8  Composition (Corollary 1): Phi > 3, Delta > 2 end-to-end");
    println!(
        "{:>4} {:>4} {:>6} {:>9} {:>7}",
        "n", "Phi", "Delta", "released", "msgs"
    );
    for (phi, delta) in [(4u64, 3u64), (5, 3), (6, 4)] {
        let mut s = SbcSession::builder(4)
            .phi(phi)
            .delta(delta)
            .seed(b"e8")
            .build()?;
        for i in 0..4u32 {
            s.submit(i, format!("c{i}").as_bytes())?;
        }
        let r = s.run_to_completion()?;
        println!(
            "{:>4} {:>4} {:>6} {:>9} {:>7}",
            4,
            phi,
            delta,
            r.release_round,
            r.messages.len()
        );
    }
    println!("(release = t_end + Delta = Phi + Delta for a round-0 start; alpha = 3 is simulator-internal)");
    Ok(())
}

/// E9 — substrate microcosts (see `cargo bench` for precise numbers).
fn e9_crypto_costs() {
    header("E9  Crypto substrate costs (one-shot; see `cargo bench` for statistics)");
    let start = Instant::now();
    let d = Sha256::digest(&vec![0u8; 1 << 20]);
    println!(
        "SHA-256 over 1 MiB: {:.2?} ({:02x}{:02x}...)",
        start.elapsed(),
        d[0],
        d[1]
    );
    let mut rng = Drbg::from_seed(b"e9");
    let start = Instant::now();
    let mut sk = sbc_primitives::wots::SigningKey::generate(8, &mut rng);
    println!("WOTS keygen (256 sigs): {:.2?}", start.elapsed());
    let start = Instant::now();
    let sig = sk.sign(b"m").unwrap();
    println!(
        "WOTS sign: {:.2?} ({} B signature)",
        start.elapsed(),
        sig.size_bytes()
    );
    let grp = SchnorrGroup::default_256();
    let x = grp.random_scalar(&mut rng);
    let start = Instant::now();
    let _ = grp.exp(&grp.generator(), &x);
    println!("256-bit group exponentiation: {:.2?}", start.elapsed());
}
