//! Benchmarks, the experiments binary, and the workspace-level integration
//! tests and examples live in this crate; see `benches/`, `src/bin/`, and
//! the repository-root `tests/` and `examples/` directories wired in
//! through the manifest.
//!
//! The container this repository builds in has no crates.io access, so the
//! benchmarks run on the dependency-free [`harness`] below instead of
//! criterion. The harness keeps criterion's core discipline — warmup,
//! adaptive iteration counts, median-of-samples reporting — in ~100 lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A minimal, dependency-free micro-benchmark harness.
pub mod harness {
    use std::time::{Duration, Instant};

    /// Default target measurement time per benchmark.
    const TARGET: Duration = Duration::from_millis(300);
    /// Default number of timed samples per benchmark.
    const SAMPLES: usize = 10;
    /// Smoke-mode target (CI bit-rot check, not a measurement).
    const SMOKE_TARGET: Duration = Duration::from_millis(20);
    /// Smoke-mode sample count.
    const SMOKE_SAMPLES: usize = 3;

    /// Whether smoke mode is on (`SBC_BENCH_SMOKE` set, non-empty): CI
    /// runs every bench this way to catch bit-rot fast — the numbers are
    /// not measurements.
    pub fn smoke_mode() -> bool {
        std::env::var_os("SBC_BENCH_SMOKE").is_some_and(|v| !v.is_empty())
    }

    fn target() -> Duration {
        if smoke_mode() {
            SMOKE_TARGET
        } else {
            TARGET
        }
    }

    fn samples() -> usize {
        if smoke_mode() {
            SMOKE_SAMPLES
        } else {
            SAMPLES
        }
    }

    /// Statistics of one benchmark run.
    #[derive(Clone, Copy, Debug)]
    pub struct Stats {
        /// Median time per iteration (nanoseconds).
        pub median_ns: f64,
        /// Mean time per iteration (nanoseconds).
        pub mean_ns: f64,
        /// Iterations per timed sample.
        pub iters: u64,
    }

    fn fmt_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    }

    /// A named group of benchmarks (mirrors criterion's `benchmark_group`).
    pub struct Group {
        name: String,
    }

    impl Group {
        /// Opens a group and prints its header.
        pub fn new(name: &str) -> Self {
            println!("\n== {name} ==");
            Group {
                name: name.to_string(),
            }
        }

        /// Runs one benchmark in the group. The closure is called
        /// repeatedly; its return value is sunk through
        /// [`std::hint::black_box`] so the optimizer cannot elide the work.
        pub fn bench<T, F: FnMut() -> T>(&self, label: &str, mut f: F) -> Stats {
            let (target, n_samples) = (target(), samples());
            // Warmup + calibration: estimate a per-iteration cost, then
            // pick an iteration count that fills target/samples per sample.
            let cal_start = Instant::now();
            let mut cal_iters: u64 = 0;
            while cal_start.elapsed() < target / 10 || cal_iters == 0 {
                std::hint::black_box(f());
                cal_iters += 1;
            }
            let per_iter = cal_start.elapsed().as_nanos() as f64 / cal_iters as f64;
            let per_sample = target.as_nanos() as f64 / n_samples as f64;
            let iters = ((per_sample / per_iter).ceil() as u64).max(1);

            let mut samples = Vec::with_capacity(n_samples);
            for _ in 0..n_samples {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
            }
            samples.sort_by(|a, b| a.total_cmp(b));
            let median_ns = samples[samples.len() / 2];
            let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
            println!(
                "{:<40} median {:>12}   mean {:>12}   ({} iters x {} samples)",
                format!("{}/{label}", self.name),
                fmt_ns(median_ns),
                fmt_ns(mean_ns),
                iters,
                n_samples,
            );
            Stats {
                median_ns,
                mean_ns,
                iters,
            }
        }
    }

    /// Opens a benchmark group.
    pub fn group(name: &str) -> Group {
        Group::new(name)
    }

    /// One record of a machine-readable benchmark report.
    #[derive(Clone, Debug)]
    pub struct Record {
        /// Group name (e.g. `sbc_pool_scaling`).
        pub group: String,
        /// Benchmark label inside the group (e.g. `instances=8`).
        pub label: String,
        /// The measured statistics.
        pub stats: Stats,
        /// Derived metrics, as `(name, value)` pairs (e.g.
        /// `("rounds_per_sec", 1.2e6)`).
        pub metrics: Vec<(String, f64)>,
    }

    fn json_escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }

    fn json_num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Writes `records` as a JSON array to `path` — the machine-readable
    /// companion to the printed tables, consumed by CI (the smoke run
    /// emits `BENCH_pool.json` this way). Hand-rolled serialization: the
    /// container has no serde.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn write_json_report(path: &str, records: &[Record]) -> std::io::Result<()> {
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"label\": \"{}\", \"median_ns\": {}, \"mean_ns\": {}, \"iters\": {}",
                json_escape(&r.group),
                json_escape(&r.label),
                json_num(r.stats.median_ns),
                json_num(r.stats.mean_ns),
                r.stats.iters,
            ));
            for (name, value) in &r.metrics {
                out.push_str(&format!(
                    ", \"{}\": {}",
                    json_escape(name),
                    json_num(*value)
                ));
            }
            out.push_str(if i + 1 == records.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bench_reports_plausible_stats() {
            let g = Group::new("harness-self-test");
            let s = g.bench("noop-ish", || std::hint::black_box(1u64 + 1));
            assert!(s.iters >= 1);
            assert!(s.median_ns > 0.0);
            assert!(s.mean_ns > 0.0);
        }

        #[test]
        fn json_report_round_trips_structurally() {
            let records = vec![
                Record {
                    group: "g".into(),
                    label: "a=1".into(),
                    stats: Stats {
                        median_ns: 12.5,
                        mean_ns: 13.0,
                        iters: 3,
                    },
                    metrics: vec![("rounds_per_sec".into(), 1e6)],
                },
                Record {
                    group: "g".into(),
                    label: "quote\"and\\slash".into(),
                    stats: Stats {
                        median_ns: 1.0,
                        mean_ns: 1.0,
                        iters: 1,
                    },
                    metrics: vec![],
                },
            ];
            let path = std::env::temp_dir().join("sbc_bench_report_test.json");
            let path = path.to_str().unwrap();
            write_json_report(path, &records).unwrap();
            let body = std::fs::read_to_string(path).unwrap();
            assert!(body.starts_with("[\n"));
            assert!(body.trim_end().ends_with(']'));
            assert!(body.contains("\"group\": \"g\""));
            assert!(body.contains("\"rounds_per_sec\": 1000000"));
            assert!(body.contains("quote\\\"and\\\\slash"));
            assert_eq!(body.matches("median_ns").count(), 2);
        }
    }
}
