#![allow(missing_docs)]
//! Benchmarks and the experiments binary live in this crate; see benches/ and src/bin/.
