//! Benchmarks, the experiments binary, and the workspace-level integration
//! tests and examples live in this crate; see `benches/`, `src/bin/`, and
//! the repository-root `tests/` and `examples/` directories wired in
//! through the manifest.
//!
//! The container this repository builds in has no crates.io access, so the
//! benchmarks run on the dependency-free [`harness`] below instead of
//! criterion. The harness keeps criterion's core discipline — warmup,
//! adaptive iteration counts, median-of-samples reporting — in ~100 lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A minimal, dependency-free micro-benchmark harness.
pub mod harness {
    use std::time::{Duration, Instant};

    /// Default target measurement time per benchmark.
    const TARGET: Duration = Duration::from_millis(300);
    /// Default number of timed samples per benchmark.
    const SAMPLES: usize = 10;
    /// Smoke-mode target (CI bit-rot check, not a measurement).
    const SMOKE_TARGET: Duration = Duration::from_millis(20);
    /// Smoke-mode sample count.
    const SMOKE_SAMPLES: usize = 3;

    /// Whether smoke mode is on (`SBC_BENCH_SMOKE` set, non-empty): CI
    /// runs every bench this way to catch bit-rot fast — the numbers are
    /// not measurements.
    pub fn smoke_mode() -> bool {
        std::env::var_os("SBC_BENCH_SMOKE").is_some_and(|v| !v.is_empty())
    }

    fn target() -> Duration {
        if smoke_mode() {
            SMOKE_TARGET
        } else {
            TARGET
        }
    }

    fn samples() -> usize {
        if smoke_mode() {
            SMOKE_SAMPLES
        } else {
            SAMPLES
        }
    }

    /// Statistics of one benchmark run.
    #[derive(Clone, Copy, Debug)]
    pub struct Stats {
        /// Median time per iteration (nanoseconds).
        pub median_ns: f64,
        /// Mean time per iteration (nanoseconds).
        pub mean_ns: f64,
        /// Iterations per timed sample.
        pub iters: u64,
    }

    fn fmt_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    }

    /// A named group of benchmarks (mirrors criterion's `benchmark_group`).
    pub struct Group {
        name: String,
    }

    impl Group {
        /// Opens a group and prints its header.
        pub fn new(name: &str) -> Self {
            println!("\n== {name} ==");
            Group {
                name: name.to_string(),
            }
        }

        /// Runs one benchmark in the group. The closure is called
        /// repeatedly; its return value is sunk through
        /// [`std::hint::black_box`] so the optimizer cannot elide the work.
        pub fn bench<T, F: FnMut() -> T>(&self, label: &str, mut f: F) -> Stats {
            let (target, n_samples) = (target(), samples());
            // Warmup + calibration: estimate a per-iteration cost, then
            // pick an iteration count that fills target/samples per sample.
            let cal_start = Instant::now();
            let mut cal_iters: u64 = 0;
            while cal_start.elapsed() < target / 10 || cal_iters == 0 {
                std::hint::black_box(f());
                cal_iters += 1;
            }
            let per_iter = cal_start.elapsed().as_nanos() as f64 / cal_iters as f64;
            let per_sample = target.as_nanos() as f64 / n_samples as f64;
            let iters = ((per_sample / per_iter).ceil() as u64).max(1);

            let mut samples = Vec::with_capacity(n_samples);
            for _ in 0..n_samples {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
            }
            samples.sort_by(|a, b| a.total_cmp(b));
            let median_ns = samples[samples.len() / 2];
            let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
            println!(
                "{:<40} median {:>12}   mean {:>12}   ({} iters x {} samples)",
                format!("{}/{label}", self.name),
                fmt_ns(median_ns),
                fmt_ns(mean_ns),
                iters,
                n_samples,
            );
            Stats {
                median_ns,
                mean_ns,
                iters,
            }
        }
    }

    /// Opens a benchmark group.
    pub fn group(name: &str) -> Group {
        Group::new(name)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bench_reports_plausible_stats() {
            let g = Group::new("harness-self-test");
            let s = g.bench("noop-ish", || std::hint::black_box(1u64 + 1));
            assert!(s.iters >= 1);
            assert!(s.median_ns > 0.0);
            assert!(s.mean_ns > 0.0);
        }
    }
}
