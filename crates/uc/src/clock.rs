//! The global clock functionality `G_clock` (paper Fig. 2).
//!
//! The clock tracks a set of registered parties and functionalities per
//! session. Time advances by one tick exactly when *all honest registered
//! parties and all registered functionalities* have issued
//! `Advance_Clock` for the current round. Corrupted parties do not gate
//! the clock (the adversary cannot stall time).
//!
//! # Examples
//!
//! ```
//! use sbc_uc::clock::GlobalClock;
//! use sbc_uc::ids::PartyId;
//!
//! let mut clock = GlobalClock::new(PartyId::all(2));
//! assert_eq!(clock.read(), 0);
//! clock.advance_party(PartyId(0));
//! assert_eq!(clock.read(), 0); // P1 hasn't advanced yet
//! clock.advance_party(PartyId(1));
//! assert_eq!(clock.read(), 1);
//! ```

use crate::ids::PartyId;
use std::collections::BTreeSet;

/// The entities that gate clock advancement.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClockEntity {
    /// A protocol party.
    Party(PartyId),
    /// A registered (clock-aware) functionality, by name.
    Functionality(String),
}

/// The global clock `G_clock(P, F)`.
///
/// Advancement checks are O(log n): the clock maintains the number of
/// still-required `Advance_Clock` marks (`required − advanced.len()`)
/// incrementally instead of recomputing the waiting set per call — at
/// `n = 1000` parties the old per-advance
/// [`waiting_on`](GlobalClock::waiting_on) scan made every round O(n²)
/// in the clock alone, dominating whole-protocol round cost.
#[derive(Clone, Debug)]
pub struct GlobalClock {
    time: u64,
    parties: BTreeSet<PartyId>,
    corrupted: BTreeSet<PartyId>,
    functionalities: BTreeSet<String>,
    advanced: BTreeSet<ClockEntity>,
    /// Entities currently gating the tick: honest registered parties plus
    /// registered functionalities. Maintained incrementally.
    required: usize,
    ticks: u64,
}

impl GlobalClock {
    /// Creates a clock gated by the given party set (no functionalities
    /// registered yet).
    pub fn new(parties: impl IntoIterator<Item = PartyId>) -> Self {
        let parties: BTreeSet<PartyId> = parties.into_iter().collect();
        GlobalClock {
            required: parties.len(),
            time: 0,
            parties,
            corrupted: BTreeSet::new(),
            functionalities: BTreeSet::new(),
            advanced: BTreeSet::new(),
            ticks: 0,
        }
    }

    /// Registers a clock-aware functionality (e.g. `F_TLE`).
    pub fn register_functionality(&mut self, name: impl Into<String>) {
        if self.functionalities.insert(name.into()) {
            self.required += 1;
        }
    }

    /// `Read_Clock`: the current time `Cl`.
    pub fn read(&self) -> u64 {
        self.time
    }

    /// Number of ticks so far (equals `read()`).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Marks a party as corrupted: it no longer gates advancement.
    ///
    /// Mirrors the honest-party filter `P_sid` in Fig. 2.
    pub fn set_corrupted(&mut self, party: PartyId) {
        if self.corrupted.insert(party) && self.parties.contains(&party) {
            self.required -= 1;
        }
        self.advanced.remove(&ClockEntity::Party(party));
        self.try_tick();
    }

    /// `Advance_Clock` from a party. Returns `true` if the clock ticked.
    pub fn advance_party(&mut self, party: PartyId) -> bool {
        if !self.parties.contains(&party) || self.corrupted.contains(&party) {
            return false;
        }
        self.advanced.insert(ClockEntity::Party(party));
        self.try_tick()
    }

    /// `Advance_Clock` from a registered functionality. Returns `true` if
    /// the clock ticked.
    pub fn advance_functionality(&mut self, name: &str) -> bool {
        if !self.functionalities.contains(name) {
            return false;
        }
        self.advanced
            .insert(ClockEntity::Functionality(name.to_string()));
        self.try_tick()
    }

    /// Whether `party` has already advanced in the current round.
    pub fn has_advanced(&self, party: PartyId) -> bool {
        self.advanced.contains(&ClockEntity::Party(party))
    }

    /// Whether the clock is mid-round: at least one registered entity has
    /// issued `Advance_Clock` since the last tick. Fast-forward joins (see
    /// [`fast_forward`](GlobalClock::fast_forward)) are only sound at a
    /// round boundary.
    pub fn mid_round(&self) -> bool {
        !self.advanced.is_empty()
    }

    /// Jumps the clock forward to `to`, as if `to − read()` complete idle
    /// rounds had elapsed — the O(1) half of `SbcWorld::join_at` (a fresh
    /// world joining a long-lived shared clock skips the `O(T·n)`
    /// `Advance_Clock` replay). `ticks()` advances by the same amount, so
    /// the jump is indistinguishable from a literal replay of idle rounds.
    ///
    /// A no-op when `to ≤ read()`. Callers must only fast-forward at a
    /// round boundary (no partial `Advance_Clock` marks — see
    /// [`mid_round`](GlobalClock::mid_round)); any pending marks are
    /// dropped, exactly as a completed round would drop them.
    pub fn fast_forward(&mut self, to: u64) {
        if to <= self.time {
            return;
        }
        let skipped = to - self.time;
        self.time = to;
        self.ticks += skipped;
        self.advanced.clear();
    }

    /// The honest parties still required before the next tick.
    pub fn waiting_on(&self) -> Vec<ClockEntity> {
        let mut out = Vec::new();
        for p in &self.parties {
            if !self.corrupted.contains(p) && !self.advanced.contains(&ClockEntity::Party(*p)) {
                out.push(ClockEntity::Party(*p));
            }
        }
        for f in &self.functionalities {
            if !self
                .advanced
                .contains(&ClockEntity::Functionality(f.clone()))
            {
                out.push(ClockEntity::Functionality(f.clone()));
            }
        }
        out
    }

    fn try_tick(&mut self) -> bool {
        // `advanced` only ever holds currently-gating entities (corruption
        // evicts a party's mark), so full-count equality is exactly
        // "nobody is waiting" — without the O(n) waiting-set scan the old
        // implementation paid on every single Advance_Clock.
        debug_assert!(self.advanced.len() <= self.required);
        if self.advanced.len() == self.required
            && !(self.parties.is_empty() && self.functionalities.is_empty())
        {
            self.time += 1;
            self.ticks += 1;
            self.advanced.clear();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_only_when_all_honest_advance() {
        let mut c = GlobalClock::new(PartyId::all(3));
        assert!(!c.advance_party(PartyId(0)));
        assert!(!c.advance_party(PartyId(1)));
        assert_eq!(c.read(), 0);
        assert!(c.advance_party(PartyId(2)));
        assert_eq!(c.read(), 1);
    }

    #[test]
    fn corrupted_parties_do_not_gate() {
        let mut c = GlobalClock::new(PartyId::all(3));
        c.set_corrupted(PartyId(2));
        c.advance_party(PartyId(0));
        assert!(c.advance_party(PartyId(1)));
        assert_eq!(c.read(), 1);
    }

    #[test]
    fn corruption_mid_round_unblocks() {
        // P2 is the only one missing; corrupting it must release the tick.
        let mut c = GlobalClock::new(PartyId::all(3));
        c.advance_party(PartyId(0));
        c.advance_party(PartyId(1));
        assert_eq!(c.read(), 0);
        c.set_corrupted(PartyId(2));
        assert_eq!(c.read(), 1);
    }

    #[test]
    fn functionalities_gate_too() {
        let mut c = GlobalClock::new(PartyId::all(1));
        c.register_functionality("F_TLE");
        c.advance_party(PartyId(0));
        assert_eq!(c.read(), 0);
        assert!(c.advance_functionality("F_TLE"));
        assert_eq!(c.read(), 1);
    }

    #[test]
    fn unregistered_entities_ignored() {
        let mut c = GlobalClock::new(PartyId::all(1));
        assert!(!c.advance_party(PartyId(9)));
        assert!(!c.advance_functionality("nope"));
        assert_eq!(c.read(), 0);
    }

    #[test]
    fn double_advance_idempotent_within_round() {
        let mut c = GlobalClock::new(PartyId::all(2));
        c.advance_party(PartyId(0));
        c.advance_party(PartyId(0));
        assert_eq!(c.read(), 0);
        assert!(c.has_advanced(PartyId(0)));
        assert!(!c.has_advanced(PartyId(1)));
        c.advance_party(PartyId(1));
        assert_eq!(c.read(), 1);
        assert!(!c.has_advanced(PartyId(0)), "reset after tick");
    }

    #[test]
    fn waiting_on_reports_missing() {
        let mut c = GlobalClock::new(PartyId::all(2));
        c.register_functionality("F");
        c.advance_party(PartyId(1));
        let waiting = c.waiting_on();
        assert!(waiting.contains(&ClockEntity::Party(PartyId(0))));
        assert!(waiting.contains(&ClockEntity::Functionality("F".into())));
        assert_eq!(waiting.len(), 2);
    }

    #[test]
    fn fast_forward_matches_idle_replay() {
        let mut replayed = GlobalClock::new(PartyId::all(3));
        for _ in 0..7 {
            replayed.advance_party(PartyId(0));
            replayed.advance_party(PartyId(1));
            replayed.advance_party(PartyId(2));
        }
        let mut jumped = GlobalClock::new(PartyId::all(3));
        jumped.fast_forward(7);
        assert_eq!(jumped.read(), replayed.read());
        assert_eq!(jumped.ticks(), replayed.ticks());
        assert!(!jumped.mid_round());
        // Backwards / same-round jumps are no-ops.
        jumped.fast_forward(7);
        jumped.fast_forward(3);
        assert_eq!(jumped.read(), 7);
        assert_eq!(jumped.ticks(), 7);
    }

    #[test]
    fn mid_round_reports_partial_advances() {
        let mut c = GlobalClock::new(PartyId::all(2));
        assert!(!c.mid_round());
        c.advance_party(PartyId(0));
        assert!(c.mid_round());
        c.advance_party(PartyId(1));
        assert!(!c.mid_round(), "tick clears the partial marks");
    }

    #[test]
    fn required_count_survives_duplicate_registration_and_corruption() {
        // The O(1) tick check counts gating entities incrementally:
        // duplicate registrations and double corruptions must not skew it.
        let mut c = GlobalClock::new(PartyId::all(3));
        c.register_functionality("F");
        c.register_functionality("F"); // duplicate: still one gate
        c.set_corrupted(PartyId(2));
        c.set_corrupted(PartyId(2)); // double corruption: one decrement
        c.set_corrupted(PartyId(9)); // unregistered: no decrement
        c.advance_party(PartyId(0));
        c.advance_party(PartyId(1));
        assert_eq!(c.read(), 0, "functionality still gates");
        assert!(c.advance_functionality("F"));
        assert_eq!(c.read(), 1);
        // Steady state keeps ticking with the same counts.
        c.advance_party(PartyId(0));
        c.advance_party(PartyId(1));
        assert!(c.advance_functionality("F"));
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn multiple_rounds() {
        let mut c = GlobalClock::new(PartyId::all(2));
        for round in 1..=5 {
            c.advance_party(PartyId(0));
            c.advance_party(PartyId(1));
            assert_eq!(c.read(), round);
        }
        assert_eq!(c.ticks(), 5);
    }
}
