//! The resource wrapper `W_q(F_RO)` (paper Fig. 5).
//!
//! The wrapper meters access to the wrapped random oracle: each party may
//! issue at most `q` *evaluation batches* per clock round; a single batch
//! may contain arbitrarily many parallel queries. Chains of *sequentially
//! dependent* hashes therefore cost one batch per link — this is precisely
//! what turns Astrolabous hash chains of length `q·τ` into puzzles that take
//! `τ` rounds to solve, and it is the resource-restriction that circumvents
//! the Hirt–Zikas impossibility.
//!
//! All corrupted parties share a *single* budget list (`L_corr` in Fig. 5):
//! corruption does not multiply the adversary's hash power.
//!
//! # Examples
//!
//! ```
//! use sbc_uc::wrapper::{QueryWrapper, WrapperClient};
//! use sbc_uc::ro::RandomOracle;
//! use sbc_primitives::drbg::Drbg;
//!
//! let mut ro = RandomOracle::new(Drbg::from_seed(b"doc"));
//! let mut w = QueryWrapper::new(2); // q = 2
//! let p = WrapperClient::Party(sbc_uc::ids::PartyId(0));
//! assert!(w.evaluate(&mut ro, 0, p, &[b"a".to_vec(), b"b".to_vec()]).is_ok());
//! assert!(w.evaluate(&mut ro, 0, p, &[b"c".to_vec()]).is_ok());
//! assert!(w.evaluate(&mut ro, 0, p, &[b"d".to_vec()]).is_err()); // budget spent
//! assert!(w.evaluate(&mut ro, 1, p, &[b"d".to_vec()]).is_ok()); // new round
//! ```

use crate::ids::PartyId;
use crate::ro::{Caller, RandomOracle};
use std::collections::HashMap;

/// Who is spending wrapper budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WrapperClient {
    /// An honest party (its own per-party budget).
    Party(PartyId),
    /// The adversary on behalf of all corrupted parties (shared budget).
    Corrupted,
}

/// Error returned when the per-round budget is exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// The round in which the budget ran out.
    pub round: u64,
}

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wrapper query budget exhausted in round {}", self.round)
    }
}

impl std::error::Error for BudgetExhausted {}

/// The wrapper functionality `W_q`.
#[derive(Clone, Debug)]
pub struct QueryWrapper {
    q: u32,
    usage: HashMap<WrapperClient, (u64, u32)>,
    batches_served: u64,
    queries_served: u64,
}

impl QueryWrapper {
    /// Creates a wrapper allowing `q` batches per client per round.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(q: u32) -> Self {
        assert!(q > 0, "q must be positive");
        QueryWrapper {
            q,
            usage: HashMap::new(),
            batches_served: 0,
            queries_served: 0,
        }
    }

    /// The per-round batch budget `q`.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// `Evaluate`: runs one batch of parallel queries against the wrapped
    /// oracle at clock time `round`.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] if the client has already spent `q`
    /// batches in `round`.
    pub fn evaluate(
        &mut self,
        ro: &mut RandomOracle,
        round: u64,
        client: WrapperClient,
        batch: &[Vec<u8>],
    ) -> Result<Vec<[u8; 32]>, BudgetExhausted> {
        let entry = self.usage.entry(client).or_insert((round, 0));
        if entry.0 != round {
            // Stale tuple from an earlier round: reset (Fig. 5 step 3).
            *entry = (round, 0);
        }
        if entry.1 >= self.q {
            return Err(BudgetExhausted { round });
        }
        entry.1 += 1;
        self.batches_served += 1;
        self.queries_served += batch.len() as u64;
        let caller = match client {
            WrapperClient::Party(p) => Caller::Party(p),
            WrapperClient::Corrupted => Caller::Adversary,
        };
        Ok(batch.iter().map(|x| ro.query(caller, x)).collect())
    }

    /// Remaining batches for `client` in `round`.
    pub fn remaining(&self, round: u64, client: WrapperClient) -> u32 {
        match self.usage.get(&client) {
            Some((r, used)) if *r == round => self.q - used.min(&self.q),
            _ => self.q,
        }
    }

    /// Total batches served (cost accounting).
    pub fn batches_served(&self) -> u64 {
        self.batches_served
    }

    /// Total individual queries served (cost accounting).
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_primitives::drbg::Drbg;

    fn setup() -> (RandomOracle, QueryWrapper) {
        (
            RandomOracle::new(Drbg::from_seed(b"w")),
            QueryWrapper::new(3),
        )
    }

    #[test]
    fn budget_enforced_per_round() {
        let (mut ro, mut w) = setup();
        let p = WrapperClient::Party(PartyId(0));
        for i in 0..3 {
            assert!(w.evaluate(&mut ro, 5, p, &[vec![i]]).is_ok());
        }
        assert_eq!(
            w.evaluate(&mut ro, 5, p, &[vec![9]]),
            Err(BudgetExhausted { round: 5 })
        );
        assert_eq!(w.remaining(5, p), 0);
    }

    #[test]
    fn budget_resets_next_round() {
        let (mut ro, mut w) = setup();
        let p = WrapperClient::Party(PartyId(0));
        for i in 0..3 {
            w.evaluate(&mut ro, 0, p, &[vec![i]]).unwrap();
        }
        assert!(w.evaluate(&mut ro, 1, p, &[vec![9]]).is_ok());
        assert_eq!(w.remaining(1, p), 2);
    }

    #[test]
    fn parties_have_independent_budgets() {
        let (mut ro, mut w) = setup();
        let p0 = WrapperClient::Party(PartyId(0));
        let p1 = WrapperClient::Party(PartyId(1));
        for i in 0..3 {
            w.evaluate(&mut ro, 0, p0, &[vec![i]]).unwrap();
        }
        assert!(w.evaluate(&mut ro, 0, p1, &[vec![9]]).is_ok());
    }

    #[test]
    fn corrupted_parties_share_one_budget() {
        let (mut ro, mut w) = setup();
        let c = WrapperClient::Corrupted;
        for i in 0..3 {
            w.evaluate(&mut ro, 0, c, &[vec![i]]).unwrap();
        }
        // No matter how many parties are corrupted, the shared list is spent.
        assert!(w.evaluate(&mut ro, 0, c, &[vec![9]]).is_err());
    }

    #[test]
    fn batch_counts_as_one_regardless_of_size() {
        let (mut ro, mut w) = setup();
        let p = WrapperClient::Party(PartyId(0));
        let big: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i]).collect();
        let out = w.evaluate(&mut ro, 0, p, &big).unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(w.remaining(0, p), 2);
        assert_eq!(w.queries_served(), 100);
        assert_eq!(w.batches_served(), 1);
    }

    #[test]
    fn results_match_direct_oracle() {
        let (mut ro, mut w) = setup();
        let p = WrapperClient::Party(PartyId(0));
        let out = w.evaluate(&mut ro, 0, p, &[b"x".to_vec()]).unwrap();
        assert_eq!(out[0], ro.query(Caller::Simulator, b"x"));
    }

    #[test]
    fn sequential_chain_needs_multiple_rounds() {
        // A 6-link sequential chain with q=3 takes exactly 2 rounds.
        let (mut ro, mut w) = setup();
        let p = WrapperClient::Party(PartyId(0));
        let mut x = b"start".to_vec();
        let mut round = 0u64;
        let mut rounds_used = 1;
        for _ in 0..6 {
            let res = match w.evaluate(&mut ro, round, p, &[x.clone()]) {
                Ok(r) => r,
                Err(_) => {
                    round += 1;
                    rounds_used += 1;
                    w.evaluate(&mut ro, round, p, &[x.clone()]).unwrap()
                }
            };
            x = res[0].to_vec();
        }
        assert_eq!(rounds_used, 2);
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn zero_q_panics() {
        QueryWrapper::new(0);
    }
}
