//! Execution transcripts — the environment's view `EXEC` used by the
//! real-vs-ideal indistinguishability experiments.
//!
//! A [`Transcript`] is the ordered list of everything the environment
//! observes: the inputs it gave, the outputs parties returned, the leakage
//! the (dummy) adversary relayed, and clock advancement. Two worlds realize
//! the same functionality iff their transcripts are indistinguishable; for
//! the deterministic parts of the paper's protocols the transcripts are
//! *equal*, which is what the tests assert.

use crate::ids::PartyId;
use crate::value::{Command, Value};
use sbc_primitives::sha256::Sha256;
use std::fmt;

/// One observable event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Clock time at which the event occurred.
    pub round: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of environment-observable events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The environment fed `cmd` to `party`.
    Input {
        /// Receiving party.
        party: PartyId,
        /// The input command.
        cmd: Command,
    },
    /// The environment instructed `party` to advance the clock.
    Advance {
        /// The advancing party.
        party: PartyId,
    },
    /// `party` produced output `cmd` towards the environment.
    Output {
        /// The producing party.
        party: PartyId,
        /// The output command.
        cmd: Command,
    },
    /// The adversary (and hence the environment, in the dummy-adversary
    /// model) observed leakage `cmd` from `source`.
    Leak {
        /// The leaking functionality/protocol component.
        source: String,
        /// The leaked command.
        cmd: Command,
    },
    /// An adversarial action taken by the environment.
    AdvAction {
        /// Human-readable description.
        desc: String,
    },
    /// A world response to an adversarial action.
    AdvResponse {
        /// The response value.
        value: Value,
    },
    /// Free-form annotation (not part of the comparable view).
    Note(String),
}

/// An ordered execution transcript.
///
/// By default the transcript records every event for the life of the run —
/// the unbounded mode every indistinguishability experiment uses, where
/// [`comparable_view`](Transcript::comparable_view) and the digests cover
/// the complete observation history. Long-lived drivers (a service pool
/// running thousands of epochs) can instead bound the memory with
/// [`with_cap`](Transcript::with_cap)/[`set_cap`](Transcript::set_cap):
/// the transcript then behaves as a ring buffer retaining the **most
/// recent** `cap` events, and counts what it evicted in
/// [`dropped`](Transcript::dropped) — overflow is observable, never
/// silent. Capping changes nothing until the cap is exceeded, so an
/// uncapped transcript (the default) is bit-for-bit the pre-cap behavior.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transcript {
    /// The events in observation order.
    pub events: Vec<Event>,
    /// Retention cap (`None` = unbounded, the default).
    cap: Option<usize>,
    /// Events evicted by the cap since recording started.
    dropped: u64,
}

impl Transcript {
    /// Creates an empty transcript.
    pub fn new() -> Self {
        Transcript::default()
    }

    /// Creates an empty transcript retaining at most `cap` most-recent
    /// events (see [`set_cap`](Transcript::set_cap)).
    pub fn with_cap(cap: usize) -> Self {
        Transcript {
            cap: Some(cap),
            ..Transcript::default()
        }
    }

    /// Sets or clears the retention cap. Shrinking below the current
    /// length evicts the oldest events immediately (counted in
    /// [`dropped`](Transcript::dropped)); clearing never restores evicted
    /// events.
    pub fn set_cap(&mut self, cap: Option<usize>) {
        self.cap = cap;
        self.enforce_cap(0);
    }

    /// The retention cap, if any.
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    /// How many events the cap has evicted so far (0 when uncapped).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Evicts oldest events until `events.len() + incoming ≤ cap`.
    fn enforce_cap(&mut self, incoming: usize) {
        let Some(cap) = self.cap else { return };
        let budget = cap.saturating_sub(incoming);
        if self.events.len() > budget {
            let excess = self.events.len() - budget;
            self.events.drain(..excess);
            self.dropped += excess as u64;
        }
    }

    /// Appends an event. In capped mode the oldest event is evicted first
    /// when full (a cap of 0 records nothing and counts every push as
    /// dropped).
    pub fn push(&mut self, round: u64, kind: EventKind) {
        if self.cap == Some(0) {
            self.dropped += 1;
            return;
        }
        self.enforce_cap(1);
        self.events.push(Event { round, kind });
    }

    /// All party outputs, in order.
    pub fn outputs(&self) -> Vec<(u64, PartyId, &Command)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Output { party, cmd } => Some((e.round, *party, cmd)),
                _ => None,
            })
            .collect()
    }

    /// Outputs of a single party.
    pub fn outputs_of(&self, party: PartyId) -> Vec<(u64, &Command)> {
        self.outputs()
            .into_iter()
            .filter_map(|(r, p, c)| if p == party { Some((r, c)) } else { None })
            .collect()
    }

    /// All leaks, in order.
    pub fn leaks(&self) -> Vec<(u64, &str, &Command)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Leak { source, cmd } => Some((e.round, source.as_str(), cmd)),
                _ => None,
            })
            .collect()
    }

    /// The comparable view: everything except `Note`s, canonically encoded.
    pub fn comparable_view(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for e in &self.events {
            if matches!(e.kind, EventKind::Note(_)) {
                continue;
            }
            out.extend_from_slice(&e.round.to_be_bytes());
            let v = match &e.kind {
                EventKind::Input { party, cmd } => Value::list([
                    Value::str("in"),
                    Value::U64(party.0 as u64),
                    Value::str(cmd.name.clone()),
                    cmd.value.clone(),
                ]),
                EventKind::Advance { party } => {
                    Value::list([Value::str("adv-clock"), Value::U64(party.0 as u64)])
                }
                EventKind::Output { party, cmd } => Value::list([
                    Value::str("out"),
                    Value::U64(party.0 as u64),
                    Value::str(cmd.name.clone()),
                    cmd.value.clone(),
                ]),
                EventKind::Leak { source, cmd } => Value::list([
                    Value::str("leak"),
                    Value::str(source.clone()),
                    Value::str(cmd.name.clone()),
                    cmd.value.clone(),
                ]),
                EventKind::AdvAction { desc } => {
                    Value::list([Value::str("adv"), Value::str(desc.clone())])
                }
                EventKind::AdvResponse { value } => {
                    Value::list([Value::str("adv-resp"), value.clone()])
                }
                EventKind::Note(_) => unreachable!(),
            };
            out.extend_from_slice(&v.encode());
        }
        out
    }

    /// SHA-256 digest of the comparable view.
    pub fn digest(&self) -> [u8; 32] {
        Sha256::digest(&self.comparable_view())
    }

    /// Digest of the *shape* of the transcript: every byte-string payload is
    /// replaced by its length before hashing.
    ///
    /// This is the comparison level for experiments where the two worlds'
    /// payloads are computationally indistinguishable but not bitwise equal
    /// (a simulator cannot reproduce `M ⊕ H(ρ)` before the functionality
    /// reveals `M`); event structure, ordering, rounds and lengths must
    /// still match exactly, and the tests pair this with an exact
    /// [`output_digest`](Transcript::output_digest) where applicable.
    pub fn shape_digest(&self) -> [u8; 32] {
        fn canon(v: &Value) -> Value {
            match v {
                Value::Bytes(b) => Value::U64(b.len() as u64),
                Value::List(items) => Value::List(items.iter().map(canon).collect()),
                other => other.clone(),
            }
        }
        let mut h = Sha256::new();
        for e in &self.events {
            if matches!(e.kind, EventKind::Note(_)) {
                continue;
            }
            h.update(&e.round.to_be_bytes());
            let v = match &e.kind {
                EventKind::Input { party, cmd } => Value::list([
                    Value::str("in"),
                    Value::U64(party.0 as u64),
                    Value::str(cmd.name.clone()),
                    canon(&cmd.value),
                ]),
                EventKind::Advance { party } => {
                    Value::list([Value::str("adv-clock"), Value::U64(party.0 as u64)])
                }
                EventKind::Output { party, cmd } => Value::list([
                    Value::str("out"),
                    Value::U64(party.0 as u64),
                    Value::str(cmd.name.clone()),
                    canon(&cmd.value),
                ]),
                EventKind::Leak { source, cmd } => Value::list([
                    Value::str("leak"),
                    Value::str(source.clone()),
                    Value::str(cmd.name.clone()),
                    canon(&cmd.value),
                ]),
                // Adversary action descriptions may embed world-dependent
                // bytes (e.g. replayed ciphertexts); only their presence is
                // part of the shape.
                EventKind::AdvAction { .. } => Value::list([Value::str("adv")]),
                EventKind::AdvResponse { value } => {
                    Value::list([Value::str("adv-resp"), canon(value)])
                }
                EventKind::Note(_) => unreachable!(),
            };
            h.update(&v.encode());
        }
        h.finalize()
    }

    /// A digest over outputs only (the weakest comparison level: what
    /// parties returned and when).
    pub fn output_digest(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        for (round, party, cmd) in self.outputs() {
            h.update(&round.to_be_bytes());
            h.update(&party.0.to_be_bytes());
            h.update(&cmd.encode());
        }
        h.finalize()
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "[{:>3}] {:?}", e.round, e.kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Transcript {
        let mut t = Transcript::new();
        t.push(
            0,
            EventKind::Input {
                party: PartyId(0),
                cmd: Command::new("Broadcast", Value::U64(1)),
            },
        );
        t.push(0, EventKind::Advance { party: PartyId(0) });
        t.push(
            1,
            EventKind::Output {
                party: PartyId(1),
                cmd: Command::new("Broadcast", Value::U64(1)),
            },
        );
        t.push(
            1,
            EventKind::Leak {
                source: "F_UBC".into(),
                cmd: Command::new("Broadcast", Value::Unit),
            },
        );
        t
    }

    #[test]
    fn outputs_filtered() {
        let t = sample();
        let outs = t.outputs();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].1, PartyId(1));
        assert_eq!(t.outputs_of(PartyId(1)).len(), 1);
        assert_eq!(t.outputs_of(PartyId(0)).len(), 0);
    }

    #[test]
    fn leaks_filtered() {
        let t = sample();
        assert_eq!(t.leaks().len(), 1);
        assert_eq!(t.leaks()[0].1, "F_UBC");
    }

    #[test]
    fn notes_excluded_from_digest() {
        let mut a = sample();
        let mut b = sample();
        b.push(2, EventKind::Note("only in b".into()));
        assert_eq!(a.digest(), b.digest());
        a.push(
            2,
            EventKind::Output {
                party: PartyId(0),
                cmd: Command::new("X", Value::Unit),
            },
        );
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_sensitive_to_round() {
        let mut a = Transcript::new();
        a.push(1, EventKind::Advance { party: PartyId(0) });
        let mut b = Transcript::new();
        b.push(2, EventKind::Advance { party: PartyId(0) });
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn output_digest_ignores_leaks() {
        let mut a = sample();
        let base = a.output_digest();
        a.push(
            3,
            EventKind::Leak {
                source: "X".into(),
                cmd: Command::new("L", Value::Unit),
            },
        );
        assert_eq!(a.output_digest(), base);
    }

    #[test]
    fn display_renders() {
        let s = format!("{}", sample());
        assert!(s.contains("Broadcast"));
    }

    #[test]
    fn cap_retains_most_recent_and_counts_drops() {
        let mut t = Transcript::with_cap(3);
        for r in 0..5u64 {
            t.push(r, EventKind::Advance { party: PartyId(0) });
        }
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.dropped(), 2);
        let rounds: Vec<u64> = t.events.iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn cap_zero_records_nothing() {
        let mut t = Transcript::with_cap(0);
        t.push(0, EventKind::Advance { party: PartyId(0) });
        t.push(1, EventKind::Advance { party: PartyId(0) });
        assert!(t.events.is_empty());
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn set_cap_shrinks_and_clearing_keeps_survivors() {
        let mut t = Transcript::new();
        for r in 0..4u64 {
            t.push(r, EventKind::Advance { party: PartyId(0) });
        }
        t.set_cap(Some(2));
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped(), 2);
        t.set_cap(None);
        t.push(9, EventKind::Advance { party: PartyId(0) });
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.cap(), None);
    }

    #[test]
    fn uncapped_behavior_unchanged() {
        let capped = sample();
        assert_eq!(capped.dropped(), 0);
        assert_eq!(capped.cap(), None);
        // Digest of an uncapped transcript matches a fresh identical one.
        assert_eq!(sample().digest(), sample().digest());
    }
}
