//! Shared context passed to hybrid functionalities and protocol parties.
//!
//! The paper's functionalities all read `G_clock`, sample randomness, leak
//! to the adversary, and consult the corruption set. [`HybridCtx`] bundles
//! mutable access to these shared resources so that functionality and
//! protocol methods stay free of world-specific plumbing, and [`Delivery`]
//! is the uniform "send this command to that party" result type.

use crate::clock::GlobalClock;
use crate::corruption::CorruptionTracker;
use crate::ids::PartyId;
use crate::value::Command;
use crate::world::Leak;
use sbc_primitives::drbg::Drbg;

/// A message from a functionality/protocol to a party.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The receiving party.
    pub to: PartyId,
    /// The delivered command.
    pub cmd: Command,
}

impl Delivery {
    /// Builds a delivery.
    pub fn new(to: PartyId, cmd: Command) -> Self {
        Delivery { to, cmd }
    }

    /// The same command delivered to every party in `0..n`.
    pub fn to_all(n: usize, cmd: Command) -> Vec<Delivery> {
        (0..n as u32)
            .map(|i| Delivery::new(PartyId(i), cmd.clone()))
            .collect()
    }
}

/// Shared execution context for one world.
pub struct HybridCtx<'a> {
    /// The global clock `G_clock`.
    pub clock: &'a mut GlobalClock,
    /// Functionality-side randomness (tags, sampled values).
    pub rng: &'a mut Drbg,
    /// Leakage channel to the (dummy) adversary.
    pub leaks: &'a mut Vec<Leak>,
    /// The corruption state.
    pub corr: &'a mut CorruptionTracker,
}

impl HybridCtx<'_> {
    /// Current clock time `Cl`.
    pub fn time(&self) -> u64 {
        self.clock.read()
    }

    /// Records leakage from `source` to the adversary.
    pub fn leak(&mut self, source: impl Into<String>, cmd: Command) {
        self.leaks.push(Leak {
            source: source.into(),
            cmd,
        });
    }

    /// Whether `party` is corrupted.
    pub fn is_corrupted(&self, party: PartyId) -> bool {
        self.corr.is_corrupted(party)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn delivery_to_all() {
        let ds = Delivery::to_all(3, Command::new("X", Value::Unit));
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[2].to, PartyId(2));
    }

    #[test]
    fn ctx_accessors() {
        let mut clock = GlobalClock::new(PartyId::all(2));
        let mut rng = Drbg::from_seed(b"ctx");
        let mut leaks = Vec::new();
        let mut corr = CorruptionTracker::new(2);
        corr.corrupt(PartyId(1), 0).unwrap();
        let mut ctx = HybridCtx {
            clock: &mut clock,
            rng: &mut rng,
            leaks: &mut leaks,
            corr: &mut corr,
        };
        assert_eq!(ctx.time(), 0);
        assert!(ctx.is_corrupted(PartyId(1)));
        assert!(!ctx.is_corrupted(PartyId(0)));
        ctx.leak("F", Command::new("L", Value::Unit));
        assert_eq!(leaks.len(), 1);
    }
}
