//! Synchronous authenticated point-to-point channels (paper §2.1).
//!
//! Messages sent in round `Cl` are delivered at the start of round `Cl+1`.
//! Channels are authenticated (the receiver learns the true sender) but the
//! adversary sees every message the moment it is sent (*rushing*) and
//! chooses the within-round delivery order. Honest-to-honest messages
//! cannot be dropped or modified — only reordered.
//!
//! # Examples
//!
//! ```
//! use sbc_uc::net::SyncNet;
//! use sbc_uc::ids::PartyId;
//! use sbc_uc::value::Value;
//!
//! let mut net = SyncNet::new(3);
//! net.send(PartyId(0), PartyId(1), Value::bytes(b"hi"));
//! assert!(net.inbox(PartyId(1)).is_empty()); // not yet delivered
//! net.deliver_round();
//! assert_eq!(net.take_inbox(PartyId(1)).len(), 1);
//! ```

use crate::ids::PartyId;
use crate::value::Value;

/// An in-flight or delivered network message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetMsg {
    /// The authenticated sender.
    pub from: PartyId,
    /// The recipient.
    pub to: PartyId,
    /// The payload.
    pub payload: Value,
}

/// The synchronous network.
#[derive(Clone, Debug)]
pub struct SyncNet {
    n: usize,
    staged: Vec<NetMsg>,
    inboxes: Vec<Vec<NetMsg>>,
    sent_total: u64,
    bytes_total: u64,
}

impl SyncNet {
    /// Creates a network for `n` parties.
    pub fn new(n: usize) -> Self {
        SyncNet {
            n,
            staged: Vec::new(),
            inboxes: vec![Vec::new(); n],
            sent_total: 0,
            bytes_total: 0,
        }
    }

    /// Sends `payload` from `from` to `to`; delivered next round.
    ///
    /// # Panics
    ///
    /// Panics if either party index is out of range.
    pub fn send(&mut self, from: PartyId, to: PartyId, payload: Value) {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "party out of range"
        );
        self.sent_total += 1;
        self.bytes_total += payload.encode().len() as u64;
        self.staged.push(NetMsg { from, to, payload });
    }

    /// Sends `payload` from `from` to every party (including itself).
    pub fn send_all(&mut self, from: PartyId, payload: Value) {
        for i in 0..self.n {
            self.send(from, PartyId(i as u32), payload.clone());
        }
    }

    /// Adversary view: all messages staged this round (rushing).
    pub fn staged(&self) -> &[NetMsg] {
        &self.staged
    }

    /// Adversary control: reorders the staged messages with `perm`, a
    /// permutation of `0..staged().len()`. Invalid permutations are ignored.
    pub fn reorder_staged(&mut self, perm: &[usize]) {
        if perm.len() != self.staged.len() {
            return;
        }
        let mut seen = vec![false; perm.len()];
        for &i in perm {
            if i >= perm.len() || seen[i] {
                return;
            }
            seen[i] = true;
        }
        let old = std::mem::take(&mut self.staged);
        self.staged = perm.iter().map(|&i| old[i].clone()).collect();
    }

    /// Adversary control: drops a staged message *from a corrupted sender*.
    /// The caller must enforce the corruption check; honest traffic must
    /// never be passed here.
    pub fn drop_staged_from(&mut self, sender: PartyId) {
        self.staged.retain(|m| m.from != sender);
    }

    /// End of round: moves staged messages into recipient inboxes.
    pub fn deliver_round(&mut self) {
        for msg in std::mem::take(&mut self.staged) {
            self.inboxes[msg.to.index()].push(msg);
        }
    }

    /// A party's undelivered inbox (peek).
    pub fn inbox(&self, party: PartyId) -> &[NetMsg] {
        &self.inboxes[party.index()]
    }

    /// Drains a party's inbox.
    pub fn take_inbox(&mut self, party: PartyId) -> Vec<NetMsg> {
        std::mem::take(&mut self.inboxes[party.index()])
    }

    /// Total messages sent (cost accounting).
    pub fn sent_total(&self) -> u64 {
        self.sent_total
    }

    /// Total payload bytes sent (cost accounting).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_next_round() {
        let mut net = SyncNet::new(2);
        net.send(PartyId(0), PartyId(1), Value::U64(1));
        assert!(net.inbox(PartyId(1)).is_empty());
        net.deliver_round();
        let msgs = net.take_inbox(PartyId(1));
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].from, PartyId(0));
        assert_eq!(msgs[0].payload, Value::U64(1));
    }

    #[test]
    fn send_all_reaches_everyone() {
        let mut net = SyncNet::new(3);
        net.send_all(PartyId(1), Value::str("x"));
        net.deliver_round();
        for i in 0..3 {
            assert_eq!(net.take_inbox(PartyId(i)).len(), 1, "party {i}");
        }
    }

    #[test]
    fn adversary_sees_staged_immediately() {
        let mut net = SyncNet::new(2);
        net.send(PartyId(0), PartyId(1), Value::U64(7));
        assert_eq!(net.staged().len(), 1);
        assert_eq!(net.staged()[0].payload, Value::U64(7));
    }

    #[test]
    fn reorder_changes_delivery_order() {
        let mut net = SyncNet::new(2);
        net.send(PartyId(0), PartyId(1), Value::U64(1));
        net.send(PartyId(0), PartyId(1), Value::U64(2));
        net.reorder_staged(&[1, 0]);
        net.deliver_round();
        let msgs = net.take_inbox(PartyId(1));
        assert_eq!(msgs[0].payload, Value::U64(2));
        assert_eq!(msgs[1].payload, Value::U64(1));
    }

    #[test]
    fn invalid_reorder_ignored() {
        let mut net = SyncNet::new(2);
        net.send(PartyId(0), PartyId(1), Value::U64(1));
        net.send(PartyId(0), PartyId(1), Value::U64(2));
        net.reorder_staged(&[0]); // wrong length
        net.reorder_staged(&[0, 0]); // not a permutation
        net.reorder_staged(&[0, 5]); // out of range
        net.deliver_round();
        let msgs = net.take_inbox(PartyId(1));
        assert_eq!(msgs[0].payload, Value::U64(1));
    }

    #[test]
    fn drop_from_corrupted_sender() {
        let mut net = SyncNet::new(3);
        net.send(PartyId(0), PartyId(2), Value::U64(1));
        net.send(PartyId(1), PartyId(2), Value::U64(2));
        net.drop_staged_from(PartyId(0));
        net.deliver_round();
        let msgs = net.take_inbox(PartyId(2));
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].from, PartyId(1));
    }

    #[test]
    fn accounting() {
        let mut net = SyncNet::new(2);
        net.send_all(PartyId(0), Value::bytes(b"abc"));
        assert_eq!(net.sent_total(), 2);
        assert!(net.bytes_total() > 0);
    }

    #[test]
    #[should_panic(expected = "party out of range")]
    fn out_of_range_send_panics() {
        let mut net = SyncNet::new(2);
        net.send(PartyId(0), PartyId(5), Value::Unit);
    }
}
