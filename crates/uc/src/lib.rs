//! # sbc-uc
//!
//! A round-based Universal Composability execution engine: the substrate on
//! which the broadcast/TLE/SBC protocols of *"Universally Composable
//! Simultaneous Broadcast against a Dishonest Majority"* (PODC 2023) run.
//!
//! The paper's hybrid functionalities map to modules as follows:
//!
//! | Paper | Module |
//! |---|---|
//! | `G_clock` (Fig. 2) | [`clock`] |
//! | `F_RO` (Fig. 3) | [`ro`] |
//! | `F_cert` (Fig. 4) | [`cert`] |
//! | `W_q(F_RO)` (Fig. 5) | [`wrapper`] |
//! | synchronous channels (§2.1) | [`net`] |
//! | adaptive non-atomic corruption (§2.1) | [`corruption`] |
//! | real/ideal experiment (Def. 1) | [`world`], [`trace`] |
//! | dual-world backends + harness | [`exec`] |
//!
//! Payloads are universal [`value::Value`] trees so that transcripts from
//! real and ideal executions compare byte-for-byte.
//!
//! # Examples
//!
//! ```
//! use sbc_uc::clock::GlobalClock;
//! use sbc_uc::ids::PartyId;
//!
//! let mut clock = GlobalClock::new(PartyId::all(2));
//! clock.advance_party(PartyId(0));
//! clock.advance_party(PartyId(1));
//! assert_eq!(clock.read(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod clock;
pub mod corruption;
pub mod exec;
pub mod hybrid;
pub mod ids;
pub mod net;
pub mod ro;
pub mod trace;
pub mod value;
pub mod world;
pub mod wrapper;
