//! Adaptive corruption tracking (paper §2.1, strong non-atomic model).
//!
//! The adversary may corrupt parties at any activation boundary — including
//! in the middle of a round, after observing a sender's message. This
//! tracker records who is corrupted and when; the per-protocol worlds
//! consult it and funnel the corruption event into their functionalities
//! (clock, certification, …).
//!
//! # Examples
//!
//! ```
//! use sbc_uc::corruption::CorruptionTracker;
//! use sbc_uc::ids::PartyId;
//!
//! let mut ct = CorruptionTracker::new(3); // t < n = 3
//! assert!(ct.corrupt(PartyId(0), 5).is_ok());
//! assert!(ct.is_corrupted(PartyId(0)));
//! assert_eq!(ct.honest_count(), 2);
//! ```

use crate::ids::PartyId;
use std::collections::BTreeSet;

/// Error: corrupting would leave no honest party (the model requires
/// `t < n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionBudgetExceeded;

impl std::fmt::Display for CorruptionBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "adversary may corrupt at most n-1 parties (t < n)")
    }
}

impl std::error::Error for CorruptionBudgetExceeded {}

/// Tracks the corrupted set `P_corr` and the corruption schedule.
#[derive(Clone, Debug)]
pub struct CorruptionTracker {
    n: usize,
    corrupted: BTreeSet<PartyId>,
    /// `(round, party)` in corruption order.
    history: Vec<(u64, PartyId)>,
}

impl CorruptionTracker {
    /// Creates a tracker for `n` parties, enforcing `t < n`.
    pub fn new(n: usize) -> Self {
        CorruptionTracker {
            n,
            corrupted: BTreeSet::new(),
            history: Vec::new(),
        }
    }

    /// Corrupts `party` at clock time `round`.
    ///
    /// # Errors
    ///
    /// Returns [`CorruptionBudgetExceeded`] if all other parties are already
    /// corrupted (at least one party must remain honest).
    pub fn corrupt(&mut self, party: PartyId, round: u64) -> Result<(), CorruptionBudgetExceeded> {
        if self.corrupted.contains(&party) {
            return Ok(()); // idempotent
        }
        if self.corrupted.len() + 1 > self.n || self.corrupted.len() + 1 > self.n - 1 {
            return Err(CorruptionBudgetExceeded);
        }
        self.corrupted.insert(party);
        self.history.push((round, party));
        Ok(())
    }

    /// Whether `party` is corrupted.
    pub fn is_corrupted(&self, party: PartyId) -> bool {
        self.corrupted.contains(&party)
    }

    /// The corrupted set.
    pub fn corrupted(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.corrupted.iter().copied()
    }

    /// The honest parties.
    pub fn honest(&self) -> Vec<PartyId> {
        (0..self.n as u32)
            .map(PartyId)
            .filter(|p| !self.corrupted.contains(p))
            .collect()
    }

    /// Number of honest parties remaining.
    pub fn honest_count(&self) -> usize {
        self.n - self.corrupted.len()
    }

    /// Number of corrupted parties.
    pub fn corrupted_count(&self) -> usize {
        self.corrupted.len()
    }

    /// The corruption schedule `(round, party)` in order.
    pub fn history(&self) -> &[(u64, PartyId)] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_and_query() {
        let mut ct = CorruptionTracker::new(4);
        ct.corrupt(PartyId(2), 0).unwrap();
        assert!(ct.is_corrupted(PartyId(2)));
        assert!(!ct.is_corrupted(PartyId(0)));
        assert_eq!(ct.honest(), vec![PartyId(0), PartyId(1), PartyId(3)]);
        assert_eq!(ct.corrupted_count(), 1);
    }

    #[test]
    fn dishonest_majority_allowed() {
        // t = n - 1 corruptions must be allowed — that's the whole point.
        let mut ct = CorruptionTracker::new(4);
        for i in 0..3 {
            ct.corrupt(PartyId(i), 0).unwrap();
        }
        assert_eq!(ct.honest_count(), 1);
    }

    #[test]
    fn full_corruption_rejected() {
        let mut ct = CorruptionTracker::new(3);
        ct.corrupt(PartyId(0), 0).unwrap();
        ct.corrupt(PartyId(1), 0).unwrap();
        assert_eq!(ct.corrupt(PartyId(2), 0), Err(CorruptionBudgetExceeded));
        assert_eq!(ct.honest_count(), 1);
    }

    #[test]
    fn idempotent_corruption() {
        let mut ct = CorruptionTracker::new(2);
        ct.corrupt(PartyId(0), 1).unwrap();
        ct.corrupt(PartyId(0), 2).unwrap();
        assert_eq!(ct.history().len(), 1);
    }

    #[test]
    fn history_records_rounds() {
        let mut ct = CorruptionTracker::new(4);
        ct.corrupt(PartyId(1), 3).unwrap();
        ct.corrupt(PartyId(0), 7).unwrap();
        assert_eq!(ct.history(), &[(3, PartyId(1)), (7, PartyId(0))]);
    }
}
