//! The unified dual-world execution layer: one trait for every backend,
//! one harness for every real-vs-ideal experiment.
//!
//! # The real/ideal/simulator triangle
//!
//! Every security statement in the paper has the same shape (Def. 1): an
//! environment `Z` drives either the **real world** (protocol parties over
//! hybrid functionalities) or the **ideal world** (dummy parties talking to
//! the target functionality, with a **simulator** `S` translating the
//! functionality's leakage into exactly the hybrid-world view the real
//! adversary would see). The protocol UC-realizes the functionality when no
//! `Z` can tell the two transcripts apart. The three corners:
//!
//! ```text
//!              environment Z  (inputs, Advance_Clock, AdvCommand)
//!                 /                                  \
//!        real world                               ideal world
//!   Π over F_hybrid + G_clock            F_target  +  simulator S
//!   (e.g. Π_SBC over F_UBC,F_TLE,F_RO)   (e.g. F_SBC + S_SBC: fabricates
//!                                         wires, mirrors F_TLE leakage,
//!                                         equivocates F_RO at release)
//! ```
//!
//! [`SbcWorld`] is the contract both corners implement, and [`DualRun`] is
//! the harness that drives a pair of them through identical actions while
//! recording both transcripts — so a test, a session, or an application can
//! swap backends without touching its driving code.
//!
//! # Multi-period composition and `begin_new_period`
//!
//! The paper composes SBC periods sequentially (§6: beacons and elections
//! run one broadcast period per epoch over a persistent world). A *period*
//! is one `[t_awake, t_end = t_awake + Φ)` window plus its release at
//! `τ_rel = t_end + ∆`; [`SbcWorld::begin_new_period`] closes the books on
//! a released period — protocol parties forget their period state,
//! undelivered wires are dropped, released functionality records are
//! pruned — while the *composable* state (the global clock `G_clock`, the
//! random oracle `F_RO`, the corruption set, and every randomness stream)
//! carries over. Because both corners of the triangle reset the same way,
//! transcript equality extends from single periods to arbitrary epoch
//! sequences: that is exactly the multi-period surface of Theorem 2 the
//! [`DualRun::finish_epoch`] checkpoints assert.

use crate::ids::PartyId;
use crate::trace::Transcript;
use crate::value::{Command, Value};
use crate::world::{AdvCommand, EnvDriver, World};
use std::fmt;

/// A [`World`] that can host simultaneous-broadcast periods: the one trait
/// every execution backend — real, ideal, or future (sharded, async,
/// networked) — implements so that sessions, tests, and benches drive all
/// of them through identical code.
///
/// The required surface is the period lifecycle; the provided methods are
/// the default driver loop ([`submit`](SbcWorld::submit) /
/// [`tick`](SbcWorld::tick)) shared by every backend.
pub trait SbcWorld: World {
    /// Closes the books on a released broadcast period so the same world
    /// can host the next one. Period-local state (party queues, undelivered
    /// wires, released records) is dropped; composable state (clock, random
    /// oracle, corruption set, randomness streams) carries over. See the
    /// [module docs](self) for how this maps to the paper's multi-period
    /// composition.
    fn begin_new_period(&mut self);

    /// The agreed release round `τ_rel = t_awake + Φ + ∆` of the current
    /// period, once any party has woken up. `None` for worlds without a
    /// period notion (e.g. plain broadcast stacks).
    fn release_round(&self) -> Option<u64>;

    /// The end `t_end = t_awake + Φ` of the current broadcast period, once
    /// any party has woken up. `None` for worlds without a period notion.
    fn period_end(&self) -> Option<u64>;

    /// Whether a simulation-abort event (the negligible-probability event
    /// of the security proofs, e.g. the adversary pre-querying a hidden
    /// oracle point) has occurred. Real worlds never abort; ideal worlds
    /// report their simulator's flag. The flag is sticky across
    /// [`begin_new_period`](SbcWorld::begin_new_period).
    fn would_abort(&self) -> bool {
        false
    }

    /// Default driver: submits `message` for broadcast by honest `party`.
    fn submit(&mut self, party: PartyId, message: &[u8]) {
        self.input(party, Command::new("Broadcast", Value::bytes(message)));
    }

    /// Default driver: one full round — every honest party advances once.
    fn tick(&mut self) {
        for i in 0..self.n() {
            let p = PartyId(i as u32);
            if !self.is_corrupted(p) {
                self.advance(p);
            }
        }
    }
}

/// How strictly a real/ideal transcript pair must agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompareLevel {
    /// Byte-identical transcripts (perfect simulations: Lemmas 1–2).
    Exact,
    /// Identical event shape plus exactly equal party outputs (Theorem 2:
    /// ciphertext bytes differ between the worlds, everything the
    /// environment can *decide on* must not).
    ShapeAndOutputs,
}

/// A detected real-vs-ideal divergence, carrying both rendered transcripts.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// What diverged (shape, outputs, digest, or a simulator abort).
    pub reason: String,
    /// The rendered real-world transcript.
    pub real: String,
    /// The rendered ideal-world transcript.
    pub ideal: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\nREAL:\n{}\nIDEAL:\n{}",
            self.reason, self.real, self.ideal
        )
    }
}

impl std::error::Error for Divergence {}

/// Checks a real/ideal transcript pair at the given comparison level.
///
/// # Errors
///
/// Returns a [`Divergence`] naming what differed.
pub fn compare_transcripts(
    level: CompareLevel,
    real: &Transcript,
    ideal: &Transcript,
) -> Result<(), Divergence> {
    let diverged = |reason: &str| Divergence {
        reason: reason.to_string(),
        real: real.to_string(),
        ideal: ideal.to_string(),
    };
    match level {
        CompareLevel::Exact => {
            if real.digest() != ideal.digest() {
                return Err(diverged("real vs ideal transcripts diverge"));
            }
        }
        CompareLevel::ShapeAndOutputs => {
            if real.shape_digest() != ideal.shape_digest() {
                return Err(diverged("real vs ideal transcript shapes diverge"));
            }
            if real.outputs() != ideal.outputs() {
                return Err(diverged("real vs ideal party outputs diverge"));
            }
        }
    }
    Ok(())
}

/// Drives a real/ideal pair of [`SbcWorld`] backends through identical
/// actions, recording both transcripts and checkpointing their equality at
/// every epoch boundary.
///
/// This is the one harness behind every indistinguishability experiment in
/// the workspace: single-period lemma tests feed it a script and check
/// once; multi-epoch Theorem 2 scenarios interleave actions with
/// [`finish_epoch`](DualRun::finish_epoch) calls. The test body never
/// touches a concrete world type — everything goes through the trait.
#[derive(Debug)]
pub struct DualRun<R: SbcWorld, I: SbcWorld> {
    real: R,
    ideal: I,
    level: CompareLevel,
    t_real: Transcript,
    t_ideal: Transcript,
    epoch: u64,
}

impl<R: SbcWorld, I: SbcWorld> DualRun<R, I> {
    /// Wraps a real/ideal pair.
    ///
    /// # Panics
    ///
    /// Panics if the two worlds disagree on the number of parties.
    pub fn new(real: R, ideal: I, level: CompareLevel) -> Self {
        assert_eq!(real.n(), ideal.n(), "worlds must have the same parties");
        DualRun {
            real,
            ideal,
            level,
            t_real: Transcript::new(),
            t_ideal: Transcript::new(),
            epoch: 0,
        }
    }

    /// Applies the same driver actions to both worlds. The closure runs
    /// twice — once per world — so it must be deterministic in the driver.
    pub fn script<F>(&mut self, f: F)
    where
        F: Fn(&mut EnvDriver<'_>),
    {
        self.both(|env| f(env));
    }

    fn both<T>(&mut self, f: impl Fn(&mut EnvDriver<'_>) -> T) -> (T, T) {
        let mut env = EnvDriver::resume(&mut self.real, std::mem::take(&mut self.t_real));
        let a = f(&mut env);
        self.t_real = env.finish();
        let mut env = EnvDriver::resume(&mut self.ideal, std::mem::take(&mut self.t_ideal));
        let b = f(&mut env);
        self.t_ideal = env.finish();
        (a, b)
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.real.n()
    }

    /// The zero-based epoch both worlds are currently in.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Submits `message` for broadcast by honest `party` in both worlds.
    pub fn submit(&mut self, party: PartyId, message: &[u8]) {
        let cmd = Command::new("Broadcast", Value::bytes(message));
        self.input(party, cmd);
    }

    /// Feeds an input to both worlds.
    pub fn input(&mut self, party: PartyId, cmd: Command) {
        self.both(|env| env.input(party, cmd.clone()));
    }

    /// Issues an adversary command to both worlds, returning both
    /// responses (they need not be equal — e.g. leakage queries differ in
    /// representation, not in shape).
    pub fn adversary(&mut self, cmd: AdvCommand) -> (Value, Value) {
        self.both(|env| env.adversary(cmd.clone()))
    }

    /// Adaptively corrupts `party` in both worlds.
    pub fn corrupt(&mut self, party: PartyId) -> (Value, Value) {
        self.adversary(AdvCommand::Corrupt(party))
    }

    /// One full round in both worlds (all honest parties advance).
    pub fn advance_all(&mut self) {
        self.both(|env| env.advance_all());
    }

    /// Runs `rounds` idle rounds in both worlds.
    pub fn idle_rounds(&mut self, rounds: u64) {
        self.both(|env| env.idle_rounds(rounds));
    }

    /// The agreed release round of the current period, once open.
    ///
    /// # Panics
    ///
    /// Panics if the two worlds disagree — that is itself a distinguishing
    /// event and must surface loudly.
    pub fn release_round(&self) -> Option<u64> {
        let (r, i) = (self.real.release_round(), self.ideal.release_round());
        assert_eq!(r, i, "release rounds diverge: real {r:?} vs ideal {i:?}");
        r
    }

    /// Checks transcript agreement (and the simulator abort flag) without
    /// ending the epoch.
    ///
    /// # Errors
    ///
    /// Returns a [`Divergence`] naming what differed.
    pub fn check(&self) -> Result<(), Divergence> {
        if self.ideal.would_abort() {
            return Err(Divergence {
                reason: "simulator abort event".to_string(),
                real: self.t_real.to_string(),
                ideal: self.t_ideal.to_string(),
            });
        }
        compare_transcripts(self.level, &self.t_real, &self.t_ideal)
    }

    /// Epoch boundary: checks agreement of everything recorded so far, then
    /// closes the released period in both worlds via
    /// [`SbcWorld::begin_new_period`]. Returns the index of the epoch just
    /// finished.
    ///
    /// # Errors
    ///
    /// Returns a [`Divergence`] naming what differed.
    pub fn finish_epoch(&mut self) -> Result<u64, Divergence> {
        self.check()?;
        self.real.begin_new_period();
        self.ideal.begin_new_period();
        let finished = self.epoch;
        self.epoch += 1;
        Ok(finished)
    }

    /// Consumes the harness, returning both transcripts.
    pub fn into_transcripts(self) -> (Transcript, Transcript) {
        (self.t_real, self.t_ideal)
    }
}

/// Runs `script` against a real/ideal pair and asserts indistinguishability
/// at `level` — the shared driver behind the per-lemma test helpers.
///
/// # Panics
///
/// Panics with both rendered transcripts on divergence or simulator abort.
pub fn assert_indistinguishable<R, I, F>(real: R, ideal: I, level: CompareLevel, script: F)
where
    R: SbcWorld,
    I: SbcWorld,
    F: Fn(&mut EnvDriver<'_>),
{
    let mut dual = DualRun::new(real, ideal, level);
    dual.script(script);
    if let Err(d) = dual.check() {
        panic!("{d}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Leak;
    use std::collections::VecDeque;

    /// A periodic echo world: inputs are echoed back on the next tick;
    /// `begin_new_period` drops undelivered inputs. A `bias` byte lets the
    /// tests fabricate divergent pairs.
    struct PeriodicEcho {
        n: usize,
        time: u64,
        pending: VecDeque<(PartyId, Command)>,
        outputs: Vec<(PartyId, Command)>,
        leaks: Vec<Leak>,
        corrupted: Vec<bool>,
        advanced: usize,
        bias: Option<u8>,
        abort: bool,
    }

    impl PeriodicEcho {
        fn new(n: usize) -> Self {
            PeriodicEcho {
                n,
                time: 0,
                pending: VecDeque::new(),
                outputs: Vec::new(),
                leaks: Vec::new(),
                corrupted: vec![false; n],
                advanced: 0,
                bias: None,
                abort: false,
            }
        }

        fn biased(n: usize, bias: u8) -> Self {
            let mut w = Self::new(n);
            w.bias = Some(bias);
            w
        }
    }

    impl World for PeriodicEcho {
        fn n(&self) -> usize {
            self.n
        }
        fn time(&self) -> u64 {
            self.time
        }
        fn input(&mut self, party: PartyId, cmd: Command) {
            let cmd = match (self.bias, &cmd.value) {
                (Some(b), Value::Bytes(v)) => {
                    let mut v = v.clone();
                    v.push(b);
                    Command::new(&cmd.name, Value::Bytes(v))
                }
                _ => cmd,
            };
            self.pending.push_back((party, cmd));
        }
        fn advance(&mut self, _party: PartyId) {
            self.advanced += 1;
            if self.advanced >= self.corrupted.iter().filter(|c| !**c).count() {
                self.advanced = 0;
                self.time += 1;
                while let Some((p, c)) = self.pending.pop_front() {
                    self.outputs.push((p, c));
                }
            }
        }
        fn adversary(&mut self, cmd: AdvCommand) -> Value {
            if let AdvCommand::Corrupt(p) = cmd {
                self.corrupted[p.index()] = true;
                return Value::Bool(true);
            }
            Value::Unit
        }
        fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
            std::mem::take(&mut self.outputs)
        }
        fn drain_leaks(&mut self) -> Vec<Leak> {
            std::mem::take(&mut self.leaks)
        }
        fn is_corrupted(&self, party: PartyId) -> bool {
            self.corrupted[party.index()]
        }
    }

    impl SbcWorld for PeriodicEcho {
        fn begin_new_period(&mut self) {
            self.pending.clear();
        }
        fn release_round(&self) -> Option<u64> {
            None
        }
        fn period_end(&self) -> Option<u64> {
            None
        }
        fn would_abort(&self) -> bool {
            self.abort
        }
    }

    #[test]
    fn identical_worlds_pass_every_epoch() {
        let mut dual = DualRun::new(
            PeriodicEcho::new(2),
            PeriodicEcho::new(2),
            CompareLevel::Exact,
        );
        for epoch in 0..3u64 {
            dual.submit(PartyId(0), format!("m{epoch}").as_bytes());
            dual.advance_all();
            assert_eq!(dual.finish_epoch().unwrap(), epoch);
        }
        assert_eq!(dual.epoch(), 3);
        let (tr, ti) = dual.into_transcripts();
        assert_eq!(tr.digest(), ti.digest());
    }

    #[test]
    fn divergent_outputs_detected() {
        let mut dual = DualRun::new(
            PeriodicEcho::new(1),
            PeriodicEcho::biased(1, 0xFF),
            CompareLevel::Exact,
        );
        dual.submit(PartyId(0), b"same-input");
        dual.advance_all();
        let err = dual.check().unwrap_err();
        assert!(err.reason.contains("diverge"), "got: {}", err.reason);
    }

    #[test]
    fn simulator_abort_detected() {
        let real = PeriodicEcho::new(1);
        let mut ideal = PeriodicEcho::new(1);
        ideal.abort = true;
        let dual = DualRun::new(real, ideal, CompareLevel::Exact);
        let err = dual.check().unwrap_err();
        assert!(err.reason.contains("abort"));
    }

    #[test]
    fn begin_new_period_drops_pending_between_epochs() {
        let mut dual = DualRun::new(
            PeriodicEcho::new(2),
            PeriodicEcho::new(2),
            CompareLevel::Exact,
        );
        // Queue an input but end the epoch before it is delivered: the next
        // epoch must not echo it.
        dual.submit(PartyId(1), b"stale");
        dual.finish_epoch().unwrap();
        dual.advance_all();
        dual.check().unwrap();
        let (tr, _) = dual.into_transcripts();
        assert!(tr.outputs().is_empty(), "stale input was dropped");
    }

    #[test]
    fn default_driver_methods_drive_the_world() {
        let mut w = PeriodicEcho::new(3);
        w.adversary(AdvCommand::Corrupt(PartyId(2)));
        w.submit(PartyId(0), b"via-default");
        w.tick();
        assert_eq!(w.time(), 1, "tick advanced the round");
        assert_eq!(w.drain_outputs().len(), 1);
    }

    #[test]
    fn corrupt_shorthand_matches_adv_command() {
        let mut dual = DualRun::new(
            PeriodicEcho::new(2),
            PeriodicEcho::new(2),
            CompareLevel::Exact,
        );
        let (r, i) = dual.corrupt(PartyId(1));
        assert_eq!(r, Value::Bool(true));
        assert_eq!(i, Value::Bool(true));
        dual.check().unwrap();
    }
}
