//! The unified dual-world execution layer: one trait for every backend,
//! one harness for every real-vs-ideal experiment.
//!
//! # The real/ideal/simulator triangle
//!
//! Every security statement in the paper has the same shape (Def. 1): an
//! environment `Z` drives either the **real world** (protocol parties over
//! hybrid functionalities) or the **ideal world** (dummy parties talking to
//! the target functionality, with a **simulator** `S` translating the
//! functionality's leakage into exactly the hybrid-world view the real
//! adversary would see). The protocol UC-realizes the functionality when no
//! `Z` can tell the two transcripts apart. The three corners:
//!
//! ```text
//!              environment Z  (inputs, Advance_Clock, AdvCommand)
//!                 /                                  \
//!        real world                               ideal world
//!   Π over F_hybrid + G_clock            F_target  +  simulator S
//!   (e.g. Π_SBC over F_UBC,F_TLE,F_RO)   (e.g. F_SBC + S_SBC: fabricates
//!                                         wires, mirrors F_TLE leakage,
//!                                         equivocates F_RO at release)
//! ```
//!
//! [`SbcWorld`] is the contract both corners implement, and [`DualRun`] is
//! the harness that drives a pair of them through identical actions while
//! recording both transcripts — so a test, a session, or an application can
//! swap backends without touching its driving code.
//!
//! # Multi-period composition and `begin_new_period`
//!
//! The paper composes SBC periods sequentially (§6: beacons and elections
//! run one broadcast period per epoch over a persistent world). A *period*
//! is one `[t_awake, t_end = t_awake + Φ)` window plus its release at
//! `τ_rel = t_end + ∆`; [`SbcWorld::begin_new_period`] closes the books on
//! a released period — protocol parties forget their period state,
//! undelivered wires are dropped, released functionality records are
//! pruned — while the *composable* state (the global clock `G_clock`, the
//! random oracle `F_RO`, the corruption set, and every randomness stream)
//! carries over. Because both corners of the triangle reset the same way,
//! transcript equality extends from single periods to arbitrary epoch
//! sequences: that is exactly the multi-period surface of Theorem 2 the
//! [`DualRun::finish_epoch`] checkpoints assert.
//!
//! # Instance pools
//!
//! The paper's applications run *many* SBC instances at once — overlapping
//! beacon epochs, parallel motions, concurrent auction lots. [`PoolWorld`]
//! is the instance-addressed sibling of [`SbcWorld`]: many concurrent
//! instances over one shared clock and one global (per-party, cross-
//! instance) corruption state, addressed by [`InstanceId`], batch-stepped
//! one shared round at a time. [`PoolDualRun`] extends the dual-world
//! harness to pool pairs, recording one transcript per instance and
//! comparing the real/ideal pools **keyed by instance** — UC composition
//! says the whole pool is indistinguishable iff every instance is, which
//! is exactly what [`PoolDualRun::check`] asserts.

use crate::ids::PartyId;
use crate::trace::{EventKind, Transcript};
use crate::value::{Command, Value};
use crate::world::{AdvCommand, EnvDriver, Leak, World};
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Shard scheduling
// ---------------------------------------------------------------------------

/// A batch scheduler that worlds use to fan independent per-party (or
/// per-instance) compute out across workers — the seam between the UC
/// execution layer and whatever thread pool the embedder provides.
///
/// The contract is strict so that backends can rely on it for
/// observation-equivalence arguments:
///
/// * **Every job runs exactly once**, and `run_boxed` does not return until
///   all of them have finished (jobs may run on other threads, but no job
///   outlives the call — callers pass closures borrowing local state).
/// * **A panic in any job propagates** to the `run_boxed` caller after the
///   whole batch has settled, exactly as the same panic would surface from
///   an inline loop.
/// * **No ordering guarantee between jobs**: jobs handed to a runner must
///   be mutually independent. Anything order-sensitive belongs in the
///   serial merge phase that follows the parallel compute phase.
///
/// Implementations: [`SerialShards`] (the inline reference), [`ScopedShards`]
/// (per-call `std::thread::scope` workers), and the persistent worker pool
/// `sbc_core::executor::Executor` (amortizes thread setup across calls).
pub trait ShardRunner: Sync {
    /// Runs every job to completion, possibly in parallel.
    fn run_boxed(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>);

    /// How many jobs can make progress at once (1 = serial). Worlds use
    /// this to pick shard sizes; it is a hint, not a contract.
    fn width(&self) -> usize {
        1
    }
}

/// The inline reference [`ShardRunner`]: runs jobs serially on the calling
/// thread, in order. Sharded code driven by this runner is the serial code —
/// useful as a determinism baseline and on single-core hosts.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialShards;

impl ShardRunner for SerialShards {
    fn run_boxed(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
        for job in jobs {
            job();
        }
    }
}

/// A [`ShardRunner`] that spawns one `std::thread::scope` worker per job on
/// every call — the dependency-free, unsafe-free reference for actually
/// parallel execution. Per-call thread spawning costs ~10–50µs per worker;
/// hot paths use the persistent `sbc_core::executor::Executor` instead,
/// which amortizes the setup across ticks.
#[derive(Clone, Copy, Debug)]
pub struct ScopedShards(
    /// Worker-count hint reported by [`ShardRunner::width`].
    pub usize,
);

impl ShardRunner for ScopedShards {
    fn run_boxed(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs.into_iter().map(|job| s.spawn(job)).collect();
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
    }

    fn width(&self) -> usize {
        self.0.max(1)
    }
}

/// Typed front end to a [`ShardRunner`]: runs `jobs` (possibly in parallel)
/// and returns their results **in job order** — the scheduling may be
/// arbitrary, the result vector is not.
pub fn run_shards<T, F>(runner: &dyn ShardRunner, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let mut slots: Vec<Option<T>> = jobs.iter().map(|_| None).collect();
    let boxed: Vec<Box<dyn FnOnce() + Send + '_>> = jobs
        .into_iter()
        .zip(slots.iter_mut())
        .map(|(job, slot)| {
            Box::new(move || {
                *slot = Some(job());
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    runner.run_boxed(boxed);
    slots
        .into_iter()
        .map(|s| s.expect("ShardRunner ran every job"))
        .collect()
}

/// Splits `0..len` into at most `shards` contiguous ranges of near-equal
/// size — the canonical work split for per-party and per-instance sharding
/// (contiguous ranges keep merges id-ordered by construction).
pub fn shard_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let chunk = len.div_ceil(shards);
    (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect()
}

/// A [`World`] that can host simultaneous-broadcast periods: the one trait
/// every execution backend — real, ideal, or future (sharded, async,
/// networked) — implements so that sessions, tests, and benches drive all
/// of them through identical code.
///
/// The required surface is the period lifecycle; the provided methods are
/// the default driver loop ([`submit`](SbcWorld::submit) /
/// [`tick`](SbcWorld::tick)) shared by every backend.
///
/// # `Send`
///
/// `SbcWorld` requires [`Send`]: instance pools step independent backend
/// worlds **in parallel** (one shared clock tick fans the per-instance
/// round out across worker threads), which moves `&mut` borrows of the
/// worlds across threads. Every in-tree backend is a plain owned-data
/// state machine and is `Send` automatically; a future backend holding
/// thread-bound resources (`Rc`, raw GUI handles, …) must wrap them in
/// `Send`-safe forms to participate.
pub trait SbcWorld: World + Send {
    /// Closes the books on a released broadcast period so the same world
    /// can host the next one. Period-local state (party queues, undelivered
    /// wires, released records) is dropped; composable state (clock, random
    /// oracle, corruption set, randomness streams) carries over. See the
    /// [module docs](self) for how this maps to the paper's multi-period
    /// composition.
    fn begin_new_period(&mut self);

    /// The agreed release round `τ_rel = t_awake + Φ + ∆` of the current
    /// period, once any party has woken up. `None` for worlds without a
    /// period notion (e.g. plain broadcast stacks).
    fn release_round(&self) -> Option<u64>;

    /// The end `t_end = t_awake + Φ` of the current broadcast period, once
    /// any party has woken up. `None` for worlds without a period notion.
    fn period_end(&self) -> Option<u64>;

    /// Whether a simulation-abort event (the negligible-probability event
    /// of the security proofs, e.g. the adversary pre-querying a hidden
    /// oracle point) has occurred. Real worlds never abort; ideal worlds
    /// report their simulator's flag. The flag is sticky across
    /// [`begin_new_period`](SbcWorld::begin_new_period).
    fn would_abort(&self) -> bool {
        false
    }

    /// Default driver: submits `message` for broadcast by honest `party`.
    fn submit(&mut self, party: PartyId, message: &[u8]) {
        self.input(party, Command::new("Broadcast", Value::bytes(message)));
    }

    /// Default driver: one full round — every honest party advances once.
    fn tick(&mut self) {
        for i in 0..self.n() {
            let p = PartyId(i as u32);
            if !self.is_corrupted(p) {
                self.advance(p);
            }
        }
    }

    /// One full round with **intra-instance party sharding**: a backend may
    /// split the per-party round work into a parallel compute phase (pure
    /// per-party work against an immutable round snapshot, fanned out on
    /// `shards`) and a serial merge phase (all clock/oracle/net mutation,
    /// in party-id order).
    ///
    /// The contract is unconditional observation-equivalence: every
    /// transcript a driver can extract afterwards — outputs, leaks, their
    /// order, the clock — must be **bit-identical** to [`tick`](SbcWorld::tick).
    /// The scheduling is a performance knob, never a semantic one; the
    /// default implementation simply runs the serial reference round.
    ///
    /// Backends whose round step is inherently sequential (pure
    /// bookkeeping, or a simulator threading one state machine — e.g. the
    /// UBC stack's `Π_UBC`, whose round is `F_RBC` delivery bookkeeping
    /// with no compute to shard) keep the default.
    fn tick_sharded(&mut self, shards: &dyn ShardRunner) {
        let _ = shards;
        self.tick();
    }

    /// Catches this world up to shared-clock round `round`, as if
    /// `round − time()` idle all-party rounds had been executed — how a
    /// freshly built world joins a long-lived shared clock (instance
    /// pools call this from `open_instance`).
    ///
    /// The default implementation is the literal replay ([`replay_join`]),
    /// `O((round − time()) · n)` `advance` calls. A backend whose idle
    /// rounds are pure clock ticks — no randomness drawn, no leaks, no
    /// outputs, no state beyond per-round dedup guards — may override this
    /// with an O(1) clock jump, **provided** the override is
    /// observation-equivalent to the replay: every transcript a driver can
    /// extract afterwards must be bit-identical to the replay path's. The
    /// real and ideal SBC worlds override it this way, falling back to the
    /// replay whenever the world is not verifiably idle.
    ///
    /// A no-op when `round ≤ time()`.
    fn join_at(&mut self, round: u64) {
        replay_join(self, round);
    }
}

/// The reference implementation of [`SbcWorld::join_at`]: replays
/// `round − time()` idle rounds by advancing every party (backends ignore
/// corrupted ones). O(1) `join_at` overrides use this as their fallback
/// when the world is not verifiably idle.
pub fn replay_join<W: SbcWorld + ?Sized>(world: &mut W, round: u64) {
    let behind = round.saturating_sub(world.time());
    for _ in 0..behind {
        for i in 0..world.n() {
            world.advance(PartyId(i as u32));
        }
    }
}

/// How strictly a real/ideal transcript pair must agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompareLevel {
    /// Byte-identical transcripts (perfect simulations: Lemmas 1–2).
    Exact,
    /// Identical event shape plus exactly equal party outputs (Theorem 2:
    /// ciphertext bytes differ between the worlds, everything the
    /// environment can *decide on* must not).
    ShapeAndOutputs,
}

/// A detected real-vs-ideal divergence, carrying both rendered transcripts.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// What diverged (shape, outputs, digest, or a simulator abort).
    pub reason: String,
    /// The rendered real-world transcript.
    pub real: String,
    /// The rendered ideal-world transcript.
    pub ideal: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\nREAL:\n{}\nIDEAL:\n{}",
            self.reason, self.real, self.ideal
        )
    }
}

impl std::error::Error for Divergence {}

/// Checks a real/ideal transcript pair at the given comparison level.
///
/// # Errors
///
/// Returns a [`Divergence`] naming what differed.
pub fn compare_transcripts(
    level: CompareLevel,
    real: &Transcript,
    ideal: &Transcript,
) -> Result<(), Divergence> {
    let diverged = |reason: &str| Divergence {
        reason: reason.to_string(),
        real: real.to_string(),
        ideal: ideal.to_string(),
    };
    match level {
        CompareLevel::Exact => {
            if real.digest() != ideal.digest() {
                return Err(diverged("real vs ideal transcripts diverge"));
            }
        }
        CompareLevel::ShapeAndOutputs => {
            if real.shape_digest() != ideal.shape_digest() {
                return Err(diverged("real vs ideal transcript shapes diverge"));
            }
            if real.outputs() != ideal.outputs() {
                return Err(diverged("real vs ideal party outputs diverge"));
            }
        }
    }
    Ok(())
}

/// Drives a real/ideal pair of [`SbcWorld`] backends through identical
/// actions, recording both transcripts and checkpointing their equality at
/// every epoch boundary.
///
/// This is the one harness behind every indistinguishability experiment in
/// the workspace: single-period lemma tests feed it a script and check
/// once; multi-epoch Theorem 2 scenarios interleave actions with
/// [`finish_epoch`](DualRun::finish_epoch) calls. The test body never
/// touches a concrete world type — everything goes through the trait.
#[derive(Debug)]
pub struct DualRun<R: SbcWorld, I: SbcWorld> {
    real: R,
    ideal: I,
    level: CompareLevel,
    t_real: Transcript,
    t_ideal: Transcript,
    epoch: u64,
}

impl<R: SbcWorld, I: SbcWorld> DualRun<R, I> {
    /// Wraps a real/ideal pair.
    ///
    /// # Panics
    ///
    /// Panics if the two worlds disagree on the number of parties.
    pub fn new(real: R, ideal: I, level: CompareLevel) -> Self {
        assert_eq!(real.n(), ideal.n(), "worlds must have the same parties");
        DualRun {
            real,
            ideal,
            level,
            t_real: Transcript::new(),
            t_ideal: Transcript::new(),
            epoch: 0,
        }
    }

    /// Applies the same driver actions to both worlds. The closure runs
    /// twice — once per world — so it must be deterministic in the driver.
    pub fn script<F>(&mut self, f: F)
    where
        F: Fn(&mut EnvDriver<'_>),
    {
        self.both(|env| f(env));
    }

    fn both<T>(&mut self, f: impl Fn(&mut EnvDriver<'_>) -> T) -> (T, T) {
        let mut env = EnvDriver::resume(&mut self.real, std::mem::take(&mut self.t_real));
        let a = f(&mut env);
        self.t_real = env.finish();
        let mut env = EnvDriver::resume(&mut self.ideal, std::mem::take(&mut self.t_ideal));
        let b = f(&mut env);
        self.t_ideal = env.finish();
        (a, b)
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.real.n()
    }

    /// The zero-based epoch both worlds are currently in.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Submits `message` for broadcast by honest `party` in both worlds.
    pub fn submit(&mut self, party: PartyId, message: &[u8]) {
        let cmd = Command::new("Broadcast", Value::bytes(message));
        self.input(party, cmd);
    }

    /// Feeds an input to both worlds.
    pub fn input(&mut self, party: PartyId, cmd: Command) {
        self.both(|env| env.input(party, cmd.clone()));
    }

    /// Issues an adversary command to both worlds, returning both
    /// responses (they need not be equal — e.g. leakage queries differ in
    /// representation, not in shape).
    pub fn adversary(&mut self, cmd: AdvCommand) -> (Value, Value) {
        self.both(|env| env.adversary(cmd.clone()))
    }

    /// Adaptively corrupts `party` in both worlds.
    pub fn corrupt(&mut self, party: PartyId) -> (Value, Value) {
        self.adversary(AdvCommand::Corrupt(party))
    }

    /// One full round in both worlds (all honest parties advance).
    pub fn advance_all(&mut self) {
        self.both(|env| env.advance_all());
    }

    /// Runs `rounds` idle rounds in both worlds.
    pub fn idle_rounds(&mut self, rounds: u64) {
        self.both(|env| env.idle_rounds(rounds));
    }

    /// The agreed release round of the current period, once open.
    ///
    /// # Panics
    ///
    /// Panics if the two worlds disagree — that is itself a distinguishing
    /// event and must surface loudly.
    pub fn release_round(&self) -> Option<u64> {
        let (r, i) = (self.real.release_round(), self.ideal.release_round());
        assert_eq!(r, i, "release rounds diverge: real {r:?} vs ideal {i:?}");
        r
    }

    /// Checks transcript agreement (and the simulator abort flag) without
    /// ending the epoch.
    ///
    /// # Errors
    ///
    /// Returns a [`Divergence`] naming what differed.
    pub fn check(&self) -> Result<(), Divergence> {
        if self.ideal.would_abort() {
            return Err(Divergence {
                reason: "simulator abort event".to_string(),
                real: self.t_real.to_string(),
                ideal: self.t_ideal.to_string(),
            });
        }
        compare_transcripts(self.level, &self.t_real, &self.t_ideal)
    }

    /// Epoch boundary: checks agreement of everything recorded so far, then
    /// closes the released period in both worlds via
    /// [`SbcWorld::begin_new_period`]. Returns the index of the epoch just
    /// finished.
    ///
    /// # Errors
    ///
    /// Returns a [`Divergence`] naming what differed.
    pub fn finish_epoch(&mut self) -> Result<u64, Divergence> {
        self.check()?;
        self.real.begin_new_period();
        self.ideal.begin_new_period();
        let finished = self.epoch;
        self.epoch += 1;
        Ok(finished)
    }

    /// Borrows both worlds — the post-run introspection hook for
    /// backend-specific assertions the driver surface does not carry
    /// (e.g. a networked backend's transport statistics).
    pub fn worlds(&self) -> (&R, &I) {
        (&self.real, &self.ideal)
    }

    /// Consumes the harness, returning both transcripts.
    pub fn into_transcripts(self) -> (Transcript, Transcript) {
        (self.t_real, self.t_ideal)
    }
}

/// Runs `script` against a real/ideal pair and asserts indistinguishability
/// at `level` — the shared driver behind the per-lemma test helpers.
///
/// # Panics
///
/// Panics with both rendered transcripts on divergence or simulator abort.
pub fn assert_indistinguishable<R, I, F>(real: R, ideal: I, level: CompareLevel, script: F)
where
    R: SbcWorld,
    I: SbcWorld,
    F: Fn(&mut EnvDriver<'_>),
{
    let mut dual = DualRun::new(real, ideal, level);
    dual.script(script);
    if let Err(d) = dual.check() {
        panic!("{d}");
    }
}

// ---------------------------------------------------------------------------
// Instance-addressed pools
// ---------------------------------------------------------------------------

/// Identifies one SBC instance inside an instance pool. Ids are assigned by
/// [`PoolWorld::open_instance`] in increasing order and are never reused,
/// so an id uniquely names an instance for the whole life of the pool —
/// including after the instance finished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instance#{}", self.0)
    }
}

/// An instance-addressed execution backend: many concurrent SBC instances
/// sharing one clock and one (per-party, instance-global) corruption state,
/// as in the UC model with joint state — instance ids play the role of
/// session ids, domain-separating the instances' randomness while
/// corruption of a party applies to every instance at once.
///
/// This is the multi-instance sibling of [`SbcWorld`]: where that trait
/// speaks `(party)`, this one speaks `(instance, party)`, and the round
/// driver ([`step_round`](PoolWorld::step_round)) batch-steps *all* live
/// instances per shared clock tick. `sbc_core::pool::PooledSbcWorld`
/// implements it over any `SbcBackend`; [`PoolDualRun`] drives a real/ideal
/// pair of implementations through identical actions with transcript
/// comparison keyed by instance.
pub trait PoolWorld {
    /// The error [`open_instance`](PoolWorld::open_instance) can fail
    /// with — building a fresh backend world can be fallible (parameter
    /// drift, resource exhaustion in future networked backends). Pools
    /// whose instance creation cannot fail use
    /// [`std::convert::Infallible`].
    type OpenError: std::error::Error;

    /// Number of parties (global — every instance shares the party set).
    fn n(&self) -> usize;

    /// The shared clock round.
    fn round(&self) -> u64;

    /// Opens a new SBC instance, returning its id. The new instance joins
    /// the shared clock at the current round and inherits the global
    /// corruption state.
    ///
    /// # Errors
    ///
    /// [`Self::OpenError`] if the backend world could not be built. A
    /// failed open must not consume an instance id.
    fn open_instance(&mut self) -> Result<InstanceId, Self::OpenError>;

    /// The ids of all live (not yet closed) instances, in id order.
    fn live_instances(&self) -> Vec<InstanceId>;

    /// Environment input to (honest) `party` of `instance`. Unknown or
    /// closed instances ignore the input (worlds are infallible; typed
    /// errors live at the session layer).
    fn input(&mut self, instance: InstanceId, party: PartyId, cmd: Command);

    /// An adversary command scoped to one instance (`SendAs`, `Control`;
    /// corruption is global — use [`corrupt`](PoolWorld::corrupt)).
    fn adversary(&mut self, instance: InstanceId, cmd: AdvCommand) -> Value;

    /// Corrupts `party` in **every** instance at once (per-party corruption
    /// is global across instances, as in the UC model). Returns the
    /// per-instance corruption responses (pending-message views) in
    /// instance order, or `None` if the corruption was refused (already
    /// corrupted, or the dishonest-majority budget `t ≤ n − 1` is
    /// exhausted).
    fn corrupt(&mut self, party: PartyId) -> Option<Vec<(InstanceId, Value)>>;

    /// Whether `party` is corrupted (globally).
    fn is_corrupted(&self, party: PartyId) -> bool;

    /// One shared clock tick: every live instance advances one full round.
    fn step_round(&mut self);

    /// Drains party outputs produced since the last call, keyed by
    /// instance.
    fn drain_outputs(&mut self) -> Vec<(InstanceId, PartyId, Command)>;

    /// Drains adversary-visible leaks produced since the last call, keyed
    /// by instance.
    fn drain_leaks(&mut self) -> Vec<(InstanceId, Leak)>;

    /// The agreed release round `τ_rel` of `instance`'s current period,
    /// once open.
    fn release_round(&self, instance: InstanceId) -> Option<u64>;

    /// The end `t_end` of `instance`'s current broadcast period, once open.
    fn period_end(&self, instance: InstanceId) -> Option<u64>;

    /// Closes the released period of `instance` so it can host the next
    /// epoch (the per-instance [`SbcWorld::begin_new_period`]).
    fn begin_new_period(&mut self, instance: InstanceId);

    /// Retires `instance`: it stops stepping and refuses further traffic.
    /// Its id is never reused.
    fn close_instance(&mut self, instance: InstanceId);

    /// Whether any instance's simulator hit a simulation-abort event
    /// (sticky, including for already-closed instances).
    fn would_abort(&self) -> bool {
        false
    }

    /// Default driver: submits `message` for broadcast by honest `party`
    /// in `instance`.
    fn submit(&mut self, instance: InstanceId, party: PartyId, message: &[u8]) {
        self.input(
            instance,
            party,
            Command::new("Broadcast", Value::bytes(message)),
        );
    }
}

/// Drives a real/ideal pair of [`PoolWorld`] backends through identical
/// actions, recording **one transcript per instance** in each world and
/// comparing the pair instance by instance — the pool-level extension of
/// [`DualRun`].
///
/// Theorem 2 composes under UC: running many SBC instances over a shared
/// clock and corruption state is indistinguishable from running many
/// `F_SBC` copies with per-instance simulators, and the distinguishing
/// power of the environment is exactly "some instance's transcript
/// diverged". [`check`](PoolDualRun::check) therefore compares every
/// instance's transcript pair (live and closed) at the configured
/// [`CompareLevel`], and [`finish_epoch`](PoolDualRun::finish_epoch)
/// checkpoints the whole pool before turning one instance's period over.
#[derive(Debug)]
pub struct PoolDualRun<R: PoolWorld, I: PoolWorld> {
    real: R,
    ideal: I,
    level: CompareLevel,
    t_real: BTreeMap<InstanceId, Transcript>,
    t_ideal: BTreeMap<InstanceId, Transcript>,
    epochs: BTreeMap<InstanceId, u64>,
}

fn pool_sync<P: PoolWorld>(world: &mut P, ts: &mut BTreeMap<InstanceId, Transcript>, round: u64) {
    for (id, leak) in world.drain_leaks() {
        ts.entry(id).or_default().push(
            round,
            EventKind::Leak {
                source: leak.source,
                cmd: leak.cmd,
            },
        );
    }
    for (id, party, cmd) in world.drain_outputs() {
        ts.entry(id)
            .or_default()
            .push(round, EventKind::Output { party, cmd });
    }
}

impl<R: PoolWorld, I: PoolWorld> PoolDualRun<R, I> {
    /// Wraps a real/ideal pool pair.
    ///
    /// # Panics
    ///
    /// Panics if the two pools disagree on the number of parties.
    pub fn new(real: R, ideal: I, level: CompareLevel) -> Self {
        assert_eq!(real.n(), ideal.n(), "pools must have the same parties");
        PoolDualRun {
            real,
            ideal,
            level,
            t_real: BTreeMap::new(),
            t_ideal: BTreeMap::new(),
            epochs: BTreeMap::new(),
        }
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.real.n()
    }

    /// The shared clock round.
    ///
    /// # Panics
    ///
    /// Panics if the two pools' clocks diverge — that is itself a
    /// distinguishing event.
    pub fn round(&self) -> u64 {
        let (r, i) = (self.real.round(), self.ideal.round());
        assert_eq!(r, i, "pool clocks diverge: real {r} vs ideal {i}");
        r
    }

    /// Opens a new instance in both pools.
    ///
    /// # Panics
    ///
    /// Panics if either pool fails to open the instance, or if the pools
    /// assign different ids (they allocate ids in the same deterministic
    /// order) — harness-style: an open failure on one side is itself a
    /// distinguishing event and must surface loudly.
    pub fn open_instance(&mut self) -> InstanceId {
        let (tr, ti) = (self.real.round(), self.ideal.round());
        let r = self
            .real
            .open_instance()
            .unwrap_or_else(|e| panic!("real pool failed to open an instance: {e}"));
        let i = self
            .ideal
            .open_instance()
            .unwrap_or_else(|e| panic!("ideal pool failed to open an instance: {e}"));
        assert_eq!(r, i, "pools assigned different instance ids");
        self.t_real.entry(r).or_default();
        self.t_ideal.entry(r).or_default();
        self.epochs.entry(r).or_insert(0);
        pool_sync(&mut self.real, &mut self.t_real, tr);
        pool_sync(&mut self.ideal, &mut self.t_ideal, ti);
        r
    }

    /// The zero-based epoch `instance` is currently in (0 for instances
    /// never passed to [`finish_epoch`](PoolDualRun::finish_epoch)).
    pub fn epoch(&self, instance: InstanceId) -> u64 {
        self.epochs.get(&instance).copied().unwrap_or(0)
    }

    /// Submits `message` for broadcast by honest `party` in `instance`, in
    /// both pools.
    pub fn submit(&mut self, instance: InstanceId, party: PartyId, message: &[u8]) {
        self.input(
            instance,
            party,
            Command::new("Broadcast", Value::bytes(message)),
        );
    }

    /// Feeds an input to `instance` in both pools.
    pub fn input(&mut self, instance: InstanceId, party: PartyId, cmd: Command) {
        let t = self.real.round();
        self.t_real.entry(instance).or_default().push(
            t,
            EventKind::Input {
                party,
                cmd: cmd.clone(),
            },
        );
        self.real.input(instance, party, cmd.clone());
        pool_sync(&mut self.real, &mut self.t_real, t);
        let t = self.ideal.round();
        self.t_ideal.entry(instance).or_default().push(
            t,
            EventKind::Input {
                party,
                cmd: cmd.clone(),
            },
        );
        self.ideal.input(instance, party, cmd);
        pool_sync(&mut self.ideal, &mut self.t_ideal, t);
    }

    /// Issues an instance-scoped adversary command to both pools, returning
    /// both responses.
    pub fn adversary(&mut self, instance: InstanceId, cmd: AdvCommand) -> (Value, Value) {
        let t = self.real.round();
        self.t_real.entry(instance).or_default().push(
            t,
            EventKind::AdvAction {
                desc: format!("{cmd:?}"),
            },
        );
        let r = self.real.adversary(instance, cmd.clone());
        self.t_real
            .entry(instance)
            .or_default()
            .push(t, EventKind::AdvResponse { value: r.clone() });
        pool_sync(&mut self.real, &mut self.t_real, t);
        let t = self.ideal.round();
        self.t_ideal.entry(instance).or_default().push(
            t,
            EventKind::AdvAction {
                desc: format!("{cmd:?}"),
            },
        );
        let i = self.ideal.adversary(instance, cmd);
        self.t_ideal
            .entry(instance)
            .or_default()
            .push(t, EventKind::AdvResponse { value: i.clone() });
        pool_sync(&mut self.ideal, &mut self.t_ideal, t);
        (r, i)
    }

    /// Corrupts `party` globally (in every instance) in both pools. The
    /// per-instance corruption responses are recorded in each instance's
    /// transcript.
    pub fn corrupt(&mut self, party: PartyId) -> (bool, bool) {
        let t = self.real.round();
        let r = self.real.corrupt(party);
        if let Some(views) = &r {
            for (id, value) in views {
                let tr = self.t_real.entry(*id).or_default();
                tr.push(
                    t,
                    EventKind::AdvAction {
                        desc: format!("Corrupt({party:?})"),
                    },
                );
                tr.push(
                    t,
                    EventKind::AdvResponse {
                        value: value.clone(),
                    },
                );
            }
        }
        pool_sync(&mut self.real, &mut self.t_real, t);
        let t = self.ideal.round();
        let i = self.ideal.corrupt(party);
        if let Some(views) = &i {
            for (id, value) in views {
                let ti = self.t_ideal.entry(*id).or_default();
                ti.push(
                    t,
                    EventKind::AdvAction {
                        desc: format!("Corrupt({party:?})"),
                    },
                );
                ti.push(
                    t,
                    EventKind::AdvResponse {
                        value: value.clone(),
                    },
                );
            }
        }
        pool_sync(&mut self.ideal, &mut self.t_ideal, t);
        (r.is_some(), i.is_some())
    }

    /// One shared clock tick in both pools (every live instance advances a
    /// full round).
    pub fn step_round(&mut self) {
        let t = self.real.round();
        self.real.step_round();
        pool_sync(&mut self.real, &mut self.t_real, t);
        let t = self.ideal.round();
        self.ideal.step_round();
        pool_sync(&mut self.ideal, &mut self.t_ideal, t);
    }

    /// Runs `rounds` shared clock ticks.
    pub fn idle_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step_round();
        }
    }

    /// The agreed release round of `instance`'s current period, once open.
    ///
    /// # Panics
    ///
    /// Panics if the two pools disagree — a distinguishing event.
    pub fn release_round(&self, instance: InstanceId) -> Option<u64> {
        let (r, i) = (
            self.real.release_round(instance),
            self.ideal.release_round(instance),
        );
        assert_eq!(r, i, "{instance}: release rounds diverge");
        r
    }

    /// Checks transcript agreement for **every** instance recorded so far
    /// (live and closed), plus the simulator abort flag.
    ///
    /// # Errors
    ///
    /// Returns a [`Divergence`] naming the diverging instance.
    pub fn check(&self) -> Result<(), Divergence> {
        if self.ideal.would_abort() {
            return Err(Divergence {
                reason: "simulator abort event".to_string(),
                real: String::new(),
                ideal: String::new(),
            });
        }
        let keys_r: Vec<_> = self.t_real.keys().copied().collect();
        let keys_i: Vec<_> = self.t_ideal.keys().copied().collect();
        if keys_r != keys_i {
            return Err(Divergence {
                reason: format!("instance sets diverge: real {keys_r:?} vs ideal {keys_i:?}"),
                real: String::new(),
                ideal: String::new(),
            });
        }
        for (id, tr) in &self.t_real {
            let ti = &self.t_ideal[id];
            compare_transcripts(self.level, tr, ti).map_err(|d| Divergence {
                reason: format!("{id}: {}", d.reason),
                ..d
            })?;
        }
        Ok(())
    }

    /// Epoch boundary for one instance: checks agreement of the **whole
    /// pool** recorded so far, then closes `instance`'s released period in
    /// both pools. Returns the index of the epoch just finished for that
    /// instance.
    ///
    /// # Errors
    ///
    /// Returns a [`Divergence`] naming what differed.
    pub fn finish_epoch(&mut self, instance: InstanceId) -> Result<u64, Divergence> {
        // A typo'd id must not vacuously succeed: begin_new_period would
        // no-op in both worlds and the harness would report an epoch
        // turnover that never happened.
        assert!(
            self.t_real.contains_key(&instance),
            "{instance} was never opened on this harness"
        );
        self.check()?;
        self.real.begin_new_period(instance);
        self.ideal.begin_new_period(instance);
        let e = self.epochs.entry(instance).or_insert(0);
        let finished = *e;
        *e += 1;
        Ok(finished)
    }

    /// Retires `instance` in both pools. Its transcripts stay part of every
    /// later [`check`](PoolDualRun::check).
    pub fn close_instance(&mut self, instance: InstanceId) {
        let t = self.real.round();
        self.real.close_instance(instance);
        pool_sync(&mut self.real, &mut self.t_real, t);
        let t = self.ideal.round();
        self.ideal.close_instance(instance);
        pool_sync(&mut self.ideal, &mut self.t_ideal, t);
    }

    /// Borrows both pools — the post-run introspection hook for
    /// backend-specific assertions the instance-addressed driver surface
    /// does not carry (e.g. a networked backend's transport statistics).
    pub fn worlds(&self) -> (&R, &I) {
        (&self.real, &self.ideal)
    }

    /// Consumes the harness, returning both per-instance transcript maps.
    pub fn into_transcripts(
        self,
    ) -> (
        BTreeMap<InstanceId, Transcript>,
        BTreeMap<InstanceId, Transcript>,
    ) {
        (self.t_real, self.t_ideal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Leak;
    use std::collections::VecDeque;

    /// A periodic echo world: inputs are echoed back on the next tick;
    /// `begin_new_period` drops undelivered inputs. A `bias` byte lets the
    /// tests fabricate divergent pairs.
    struct PeriodicEcho {
        n: usize,
        time: u64,
        pending: VecDeque<(PartyId, Command)>,
        outputs: Vec<(PartyId, Command)>,
        leaks: Vec<Leak>,
        corrupted: Vec<bool>,
        advanced: usize,
        bias: Option<u8>,
        abort: bool,
    }

    impl PeriodicEcho {
        fn new(n: usize) -> Self {
            PeriodicEcho {
                n,
                time: 0,
                pending: VecDeque::new(),
                outputs: Vec::new(),
                leaks: Vec::new(),
                corrupted: vec![false; n],
                advanced: 0,
                bias: None,
                abort: false,
            }
        }

        fn biased(n: usize, bias: u8) -> Self {
            let mut w = Self::new(n);
            w.bias = Some(bias);
            w
        }
    }

    impl World for PeriodicEcho {
        fn n(&self) -> usize {
            self.n
        }
        fn time(&self) -> u64 {
            self.time
        }
        fn input(&mut self, party: PartyId, cmd: Command) {
            let cmd = match (self.bias, &cmd.value) {
                (Some(b), Value::Bytes(v)) => {
                    let mut v = v.clone();
                    v.push(b);
                    Command::new(&cmd.name, Value::Bytes(v))
                }
                _ => cmd,
            };
            self.pending.push_back((party, cmd));
        }
        fn advance(&mut self, _party: PartyId) {
            self.advanced += 1;
            if self.advanced >= self.corrupted.iter().filter(|c| !**c).count() {
                self.advanced = 0;
                self.time += 1;
                while let Some((p, c)) = self.pending.pop_front() {
                    self.outputs.push((p, c));
                }
            }
        }
        fn adversary(&mut self, cmd: AdvCommand) -> Value {
            if let AdvCommand::Corrupt(p) = cmd {
                self.corrupted[p.index()] = true;
                return Value::Bool(true);
            }
            Value::Unit
        }
        fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
            std::mem::take(&mut self.outputs)
        }
        fn drain_leaks(&mut self) -> Vec<Leak> {
            std::mem::take(&mut self.leaks)
        }
        fn is_corrupted(&self, party: PartyId) -> bool {
            self.corrupted[party.index()]
        }
    }

    impl SbcWorld for PeriodicEcho {
        fn begin_new_period(&mut self) {
            self.pending.clear();
        }
        fn release_round(&self) -> Option<u64> {
            None
        }
        fn period_end(&self) -> Option<u64> {
            None
        }
        fn would_abort(&self) -> bool {
            self.abort
        }
    }

    #[test]
    fn identical_worlds_pass_every_epoch() {
        let mut dual = DualRun::new(
            PeriodicEcho::new(2),
            PeriodicEcho::new(2),
            CompareLevel::Exact,
        );
        for epoch in 0..3u64 {
            dual.submit(PartyId(0), format!("m{epoch}").as_bytes());
            dual.advance_all();
            assert_eq!(dual.finish_epoch().unwrap(), epoch);
        }
        assert_eq!(dual.epoch(), 3);
        let (tr, ti) = dual.into_transcripts();
        assert_eq!(tr.digest(), ti.digest());
    }

    #[test]
    fn divergent_outputs_detected() {
        let mut dual = DualRun::new(
            PeriodicEcho::new(1),
            PeriodicEcho::biased(1, 0xFF),
            CompareLevel::Exact,
        );
        dual.submit(PartyId(0), b"same-input");
        dual.advance_all();
        let err = dual.check().unwrap_err();
        assert!(err.reason.contains("diverge"), "got: {}", err.reason);
    }

    #[test]
    fn simulator_abort_detected() {
        let real = PeriodicEcho::new(1);
        let mut ideal = PeriodicEcho::new(1);
        ideal.abort = true;
        let dual = DualRun::new(real, ideal, CompareLevel::Exact);
        let err = dual.check().unwrap_err();
        assert!(err.reason.contains("abort"));
    }

    #[test]
    fn begin_new_period_drops_pending_between_epochs() {
        let mut dual = DualRun::new(
            PeriodicEcho::new(2),
            PeriodicEcho::new(2),
            CompareLevel::Exact,
        );
        // Queue an input but end the epoch before it is delivered: the next
        // epoch must not echo it.
        dual.submit(PartyId(1), b"stale");
        dual.finish_epoch().unwrap();
        dual.advance_all();
        dual.check().unwrap();
        let (tr, _) = dual.into_transcripts();
        assert!(tr.outputs().is_empty(), "stale input was dropped");
    }

    #[test]
    fn default_driver_methods_drive_the_world() {
        let mut w = PeriodicEcho::new(3);
        w.adversary(AdvCommand::Corrupt(PartyId(2)));
        w.submit(PartyId(0), b"via-default");
        w.tick();
        assert_eq!(w.time(), 1, "tick advanced the round");
        assert_eq!(w.drain_outputs().len(), 1);
    }

    #[test]
    fn default_join_at_is_the_idle_replay() {
        // join_at's default must behave exactly like advancing every party
        // for the missing rounds — the pre-offset-join pool catch-up.
        let mut replayed = PeriodicEcho::new(3);
        for _ in 0..5 {
            for p in 0..3 {
                replayed.advance(PartyId(p));
            }
        }
        let mut joined = PeriodicEcho::new(3);
        joined.join_at(5);
        assert_eq!(joined.time(), replayed.time());
        // Joining backwards (or at the current round) is a no-op.
        joined.join_at(2);
        assert_eq!(joined.time(), 5);
    }

    #[test]
    fn corrupt_shorthand_matches_adv_command() {
        let mut dual = DualRun::new(
            PeriodicEcho::new(2),
            PeriodicEcho::new(2),
            CompareLevel::Exact,
        );
        let (r, i) = dual.corrupt(PartyId(1));
        assert_eq!(r, Value::Bool(true));
        assert_eq!(i, Value::Bool(true));
        dual.check().unwrap();
    }

    /// A pool of [`PeriodicEcho`] instances over one shared clock and a
    /// global corruption vector — the minimal [`PoolWorld`].
    struct EchoPool {
        n: usize,
        round: u64,
        next: u64,
        live: BTreeMap<u64, PeriodicEcho>,
        corrupted: Vec<bool>,
        bias: Option<u8>,
    }

    impl EchoPool {
        fn new(n: usize) -> Self {
            EchoPool {
                n,
                round: 0,
                next: 0,
                live: BTreeMap::new(),
                corrupted: vec![false; n],
                bias: None,
            }
        }

        fn biased(n: usize, bias: u8) -> Self {
            let mut p = Self::new(n);
            p.bias = Some(bias);
            p
        }
    }

    impl PoolWorld for EchoPool {
        type OpenError = std::convert::Infallible;
        fn n(&self) -> usize {
            self.n
        }
        fn round(&self) -> u64 {
            self.round
        }
        fn open_instance(&mut self) -> Result<InstanceId, Self::OpenError> {
            let id = self.next;
            self.next += 1;
            let mut w = match self.bias {
                Some(b) => PeriodicEcho::biased(self.n, b),
                None => PeriodicEcho::new(self.n),
            };
            for (p, c) in self.corrupted.clone().iter().enumerate() {
                if *c {
                    w.adversary(AdvCommand::Corrupt(PartyId(p as u32)));
                }
            }
            w.time = self.round;
            self.live.insert(id, w);
            Ok(InstanceId(id))
        }
        fn live_instances(&self) -> Vec<InstanceId> {
            self.live.keys().copied().map(InstanceId).collect()
        }
        fn input(&mut self, instance: InstanceId, party: PartyId, cmd: Command) {
            if let Some(w) = self.live.get_mut(&instance.0) {
                w.input(party, cmd);
            }
        }
        fn adversary(&mut self, instance: InstanceId, cmd: AdvCommand) -> Value {
            match self.live.get_mut(&instance.0) {
                Some(w) => w.adversary(cmd),
                None => Value::Unit,
            }
        }
        fn corrupt(&mut self, party: PartyId) -> Option<Vec<(InstanceId, Value)>> {
            if self.corrupted[party.index()] {
                return None;
            }
            self.corrupted[party.index()] = true;
            let mut views = Vec::new();
            for (id, w) in self.live.iter_mut() {
                views.push((InstanceId(*id), w.adversary(AdvCommand::Corrupt(party))));
            }
            Some(views)
        }
        fn is_corrupted(&self, party: PartyId) -> bool {
            self.corrupted[party.index()]
        }
        fn step_round(&mut self) {
            for w in self.live.values_mut() {
                for p in 0..self.n {
                    if !self.corrupted[p] {
                        w.advance(PartyId(p as u32));
                    }
                }
            }
            self.round += 1;
        }
        fn drain_outputs(&mut self) -> Vec<(InstanceId, PartyId, Command)> {
            let mut outs = Vec::new();
            for (id, w) in self.live.iter_mut() {
                for (p, c) in w.drain_outputs() {
                    outs.push((InstanceId(*id), p, c));
                }
            }
            outs
        }
        fn drain_leaks(&mut self) -> Vec<(InstanceId, Leak)> {
            let mut leaks = Vec::new();
            for (id, w) in self.live.iter_mut() {
                for l in w.drain_leaks() {
                    leaks.push((InstanceId(*id), l));
                }
            }
            leaks
        }
        fn release_round(&self, _instance: InstanceId) -> Option<u64> {
            None
        }
        fn period_end(&self, _instance: InstanceId) -> Option<u64> {
            None
        }
        fn begin_new_period(&mut self, instance: InstanceId) {
            if let Some(w) = self.live.get_mut(&instance.0) {
                w.begin_new_period();
            }
        }
        fn close_instance(&mut self, instance: InstanceId) {
            self.live.remove(&instance.0);
        }
    }

    #[test]
    fn pool_dual_run_identical_pools_pass_keyed_checks() {
        let mut dual = PoolDualRun::new(EchoPool::new(2), EchoPool::new(2), CompareLevel::Exact);
        let a = dual.open_instance();
        let b = dual.open_instance();
        assert_ne!(a, b);
        dual.submit(a, PartyId(0), b"to-a");
        dual.submit(b, PartyId(1), b"to-b");
        dual.step_round();
        dual.check().unwrap();
        assert_eq!(dual.finish_epoch(a).unwrap(), 0);
        assert_eq!(dual.epoch(a), 1);
        assert_eq!(dual.epoch(b), 0);
        let (tr, ti) = dual.into_transcripts();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[&a].digest(), ti[&a].digest());
        assert_eq!(tr[&b].digest(), ti[&b].digest());
        assert_eq!(tr[&a].outputs().len(), 1, "instance outputs stay keyed");
    }

    #[test]
    fn pool_dual_run_divergence_names_the_instance() {
        let mut dual = PoolDualRun::new(
            EchoPool::new(1),
            EchoPool::biased(1, 0xAA),
            CompareLevel::Exact,
        );
        let a = dual.open_instance();
        let b = dual.open_instance();
        dual.submit(b, PartyId(0), b"diverges-here");
        dual.step_round();
        let err = dual.check().unwrap_err();
        assert!(
            err.reason.contains(&format!("{b}")),
            "reason names instance: {}",
            err.reason
        );
        let _ = a;
    }

    #[test]
    fn run_shards_preserves_job_order_on_every_runner() {
        let jobs = |n: usize| (0..n).map(|i| move || i * i).collect::<Vec<_>>();
        assert_eq!(
            run_shards(&SerialShards, jobs(17)),
            run_shards(&ScopedShards(4), jobs(17))
        );
        assert_eq!(run_shards(&SerialShards, jobs(1)), vec![0]);
        assert!(run_shards(&SerialShards, Vec::<fn() -> usize>::new()).is_empty());
    }

    #[test]
    fn scoped_shards_propagate_panics() {
        let result = std::panic::catch_unwind(|| {
            run_shards(
                &ScopedShards(2),
                vec![
                    Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
                    Box::new(|| panic!("shard boom")),
                ],
            )
        });
        assert!(result.is_err(), "job panic reaches the caller");
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for (len, shards) in [(0usize, 4usize), (1, 4), (7, 3), (8, 3), (9, 3), (5, 9)] {
            let ranges = shard_ranges(len, shards);
            let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
            assert_eq!(
                flat,
                (0..len).collect::<Vec<_>>(),
                "len={len} shards={shards}"
            );
            assert!(ranges.len() <= shards.max(1));
        }
    }

    #[test]
    fn tick_sharded_default_is_the_serial_tick() {
        let mut serial = PeriodicEcho::new(3);
        let mut sharded = PeriodicEcho::new(3);
        serial.submit(PartyId(0), b"m");
        sharded.submit(PartyId(0), b"m");
        serial.tick();
        sharded.tick_sharded(&ScopedShards(2));
        assert_eq!(serial.time(), sharded.time());
        assert_eq!(serial.drain_outputs(), sharded.drain_outputs());
    }

    #[test]
    fn pool_dual_run_global_corruption_hits_every_instance() {
        let mut dual = PoolDualRun::new(EchoPool::new(2), EchoPool::new(2), CompareLevel::Exact);
        let a = dual.open_instance();
        let b = dual.open_instance();
        let (r, i) = dual.corrupt(PartyId(0));
        assert!(r && i);
        // A second corruption of the same party is refused in both pools.
        let (r, i) = dual.corrupt(PartyId(0));
        assert!(!r && !i);
        // The shared clock keeps ticking for the remaining honest party.
        dual.submit(a, PartyId(1), b"still-live");
        dual.step_round();
        dual.check().unwrap();
        dual.close_instance(b);
        dual.step_round();
        dual.check().unwrap();
        assert_eq!(dual.round(), 2);
    }
}
