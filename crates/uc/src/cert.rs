//! The certification functionality `F_cert` (paper Fig. 4) and a real
//! instantiation over WOTS hash-based signatures with a trusted CA.
//!
//! `F_cert` provides identity-bound signatures: one instance per signer.
//! The ideal functionality keeps the `L_sign` record list and enforces
//! unforgeability *by bookkeeping* (verification of never-signed messages
//! fails while the signer is honest); once the signer is corrupted the
//! adversary may authorize arbitrary pairs — exactly the interface
//! Dolev–Strong needs.
//!
//! Both the ideal and the real variant implement [`Certifier`], so the
//! Dolev–Strong protocol can run over either (the Fact 1 ablation).
//!
//! # Examples
//!
//! ```
//! use sbc_uc::cert::{Certifier, IdealCert};
//! use sbc_uc::ids::PartyId;
//! use sbc_primitives::drbg::Drbg;
//!
//! let mut cert = IdealCert::new(PartyId(0), Drbg::from_seed(b"doc"));
//! let sig = cert.sign(b"msg");
//! assert!(cert.verify(b"msg", &sig));
//! assert!(!cert.verify(b"other", &sig));
//! ```

use crate::ids::PartyId;
use sbc_primitives::drbg::Drbg;
use sbc_primitives::wots;
use std::collections::HashMap;

/// Identity-bound signing/verification: the interface `F_cert` exposes to
/// protocols.
pub trait Certifier {
    /// The signer this instance is bound to.
    fn signer(&self) -> PartyId;
    /// Signs `message` as the bound signer.
    fn sign(&mut self, message: &[u8]) -> Vec<u8>;
    /// Verifies `signature` on `message` for the bound signer.
    fn verify(&mut self, message: &[u8], signature: &[u8]) -> bool;
    /// Marks the signer corrupted (changes forgery semantics per Fig. 4).
    fn set_corrupted(&mut self);
    /// Adversary interface: authorize `(message, signature)` as valid.
    /// Only effective while the signer is corrupted.
    fn adversarial_authorize(&mut self, message: &[u8], signature: &[u8]) -> bool;
}

/// The ideal certification functionality `F_cert^S(P)`.
#[derive(Clone, Debug)]
pub struct IdealCert {
    signer: PartyId,
    /// `L_sign`: (message, signature) → verdict.
    records: HashMap<(Vec<u8>, Vec<u8>), bool>,
    /// Messages with at least one valid signature (for rule 2 of Fig. 4).
    signed_messages: HashMap<Vec<u8>, ()>,
    corrupted: bool,
    rng: Drbg,
}

impl IdealCert {
    /// Creates an instance for `signer`; signature strings are sampled from
    /// `rng` (standing in for the simulator-chosen σ of Fig. 4).
    pub fn new(signer: PartyId, rng: Drbg) -> Self {
        IdealCert {
            signer,
            records: HashMap::new(),
            signed_messages: HashMap::new(),
            corrupted: false,
            rng,
        }
    }
}

impl Certifier for IdealCert {
    fn signer(&self) -> PartyId {
        self.signer
    }

    fn sign(&mut self, message: &[u8]) -> Vec<u8> {
        // The simulator must provide a σ not previously recorded invalid.
        loop {
            let sig = self.rng.gen_bytes(32);
            match self.records.get(&(message.to_vec(), sig.clone())) {
                Some(false) => continue, // would contradict a recorded 0
                _ => {
                    self.records.insert((message.to_vec(), sig.clone()), true);
                    self.signed_messages.insert(message.to_vec(), ());
                    return sig;
                }
            }
        }
    }

    fn verify(&mut self, message: &[u8], signature: &[u8]) -> bool {
        let key = (message.to_vec(), signature.to_vec());
        // Rule 1/3: recorded verdicts are sticky (consistency).
        if let Some(f) = self.records.get(&key) {
            return *f;
        }
        // Rule 2: unforgeability while the signer is honest.
        if !self.corrupted && !self.signed_messages.contains_key(message) {
            self.records.insert(key, false);
            return false;
        }
        // Rule 4: the adversary decides ϕ. Our default adversary rejects
        // unless it explicitly authorized the pair via
        // `adversarial_authorize`.
        self.records.insert(key, false);
        false
    }

    fn set_corrupted(&mut self) {
        self.corrupted = true;
    }

    fn adversarial_authorize(&mut self, message: &[u8], signature: &[u8]) -> bool {
        if !self.corrupted {
            return false;
        }
        let key = (message.to_vec(), signature.to_vec());
        if let Some(f) = self.records.get(&key) {
            return *f; // sticky verdicts cannot be overwritten
        }
        self.records.insert(key, true);
        self.signed_messages.insert(message.to_vec(), ());
        true
    }
}

/// Real certification: WOTS signatures checked against a CA-distributed
/// verification key (the PKI realization of `F_cert`).
#[derive(Clone, Debug)]
pub struct RealCert {
    signer: PartyId,
    key: wots::SigningKey,
    vk: wots::VerificationKey,
    corrupted: bool,
    /// Adversarially authorized pairs once corrupted (the adversary knows
    /// the secret key then, modeled as free authorization).
    forged: HashMap<(Vec<u8>, Vec<u8>), ()>,
}

impl RealCert {
    /// Generates a key pair with `2^height` signatures and "registers" the
    /// verification key with the CA.
    pub fn new(signer: PartyId, height: u32, rng: &mut Drbg) -> Self {
        let key = wots::SigningKey::generate(height, rng);
        let vk = key.verification_key();
        RealCert {
            signer,
            key,
            vk,
            corrupted: false,
            forged: HashMap::new(),
        }
    }
}

impl Certifier for RealCert {
    fn signer(&self) -> PartyId {
        self.signer
    }

    fn sign(&mut self, message: &[u8]) -> Vec<u8> {
        let sig = self
            .key
            .sign(message)
            .expect("signature capacity exhausted");
        // Frame: [leaf_index u32][n_chains u8][chains..][n_path u8][path..].
        let mut out = Vec::with_capacity(sig.size_bytes());
        out.extend_from_slice(&sig.leaf_index.to_be_bytes());
        let (chains, path) = sig.parts();
        out.push(chains.len() as u8);
        for c in chains {
            out.extend_from_slice(&c);
        }
        out.push(path.len() as u8);
        for p in path {
            out.extend_from_slice(&p);
        }
        out
    }

    fn verify(&mut self, message: &[u8], signature: &[u8]) -> bool {
        if self
            .forged
            .contains_key(&(message.to_vec(), signature.to_vec()))
        {
            return true;
        }
        let Some(sig) = decode_wots_sig(signature) else {
            return false;
        };
        self.vk.verify(message, &sig)
    }

    fn set_corrupted(&mut self) {
        self.corrupted = true;
    }

    fn adversarial_authorize(&mut self, message: &[u8], signature: &[u8]) -> bool {
        if !self.corrupted {
            return false;
        }
        self.forged
            .insert((message.to_vec(), signature.to_vec()), ());
        true
    }
}

fn decode_wots_sig(bytes: &[u8]) -> Option<wots::Signature> {
    if bytes.len() < 6 {
        return None;
    }
    let leaf_index = u32::from_be_bytes(bytes[..4].try_into().ok()?);
    let n_chains = bytes[4] as usize;
    let mut pos = 5;
    let mut chains = Vec::with_capacity(n_chains);
    for _ in 0..n_chains {
        let c: [u8; 32] = bytes.get(pos..pos + 32)?.try_into().ok()?;
        chains.push(c);
        pos += 32;
    }
    let n_path = *bytes.get(pos)? as usize;
    pos += 1;
    let mut path = Vec::with_capacity(n_path);
    for _ in 0..n_path {
        let p: [u8; 32] = bytes.get(pos..pos + 32)?.try_into().ok()?;
        path.push(p);
        pos += 32;
    }
    if pos != bytes.len() {
        return None;
    }
    Some(wots::Signature::from_parts(leaf_index, chains, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sign_verify() {
        let mut c = IdealCert::new(PartyId(1), Drbg::from_seed(b"c"));
        let sig = c.sign(b"m1");
        assert!(c.verify(b"m1", &sig));
        assert!(!c.verify(b"m2", &sig));
    }

    #[test]
    fn ideal_unforgeable_while_honest() {
        let mut c = IdealCert::new(PartyId(1), Drbg::from_seed(b"c"));
        assert!(!c.verify(b"never-signed", b"fake-sig"));
        // And not even the adversary can authorize before corruption.
        assert!(!c.adversarial_authorize(b"never-signed", b"fake-sig"));
        assert!(!c.verify(b"never-signed", b"fake-sig"));
    }

    #[test]
    fn ideal_verdicts_sticky() {
        let mut c = IdealCert::new(PartyId(1), Drbg::from_seed(b"c"));
        assert!(!c.verify(b"m", b"s")); // records (m, s, 0)
        c.set_corrupted();
        // Even after corruption the recorded 0 verdict stands (rule 3).
        assert!(!c.adversarial_authorize(b"m", b"s"));
        assert!(!c.verify(b"m", b"s"));
    }

    #[test]
    fn ideal_corrupted_signer_forgeable() {
        let mut c = IdealCert::new(PartyId(1), Drbg::from_seed(b"c"));
        c.set_corrupted();
        assert!(c.adversarial_authorize(b"forged", b"sig"));
        assert!(c.verify(b"forged", b"sig"));
    }

    #[test]
    fn real_sign_verify() {
        let mut rng = Drbg::from_seed(b"real");
        let mut c = RealCert::new(PartyId(0), 3, &mut rng);
        let sig = c.sign(b"msg");
        assert!(c.verify(b"msg", &sig));
        assert!(!c.verify(b"other", &sig));
    }

    #[test]
    fn real_rejects_garbage() {
        let mut rng = Drbg::from_seed(b"real");
        let mut c = RealCert::new(PartyId(0), 2, &mut rng);
        assert!(!c.verify(b"msg", b"garbage"));
        assert!(!c.verify(b"msg", &[]));
    }

    #[test]
    fn real_signature_transferable() {
        // Verification only needs the vk: another instance with the same vk
        // accepts. (Simulated by cloning.)
        let mut rng = Drbg::from_seed(b"real");
        let mut signer = RealCert::new(PartyId(0), 2, &mut rng);
        let mut verifier = signer.clone();
        let sig = signer.sign(b"msg");
        assert!(verifier.verify(b"msg", &sig));
    }

    #[test]
    fn real_corrupted_authorization() {
        let mut rng = Drbg::from_seed(b"real");
        let mut c = RealCert::new(PartyId(0), 2, &mut rng);
        assert!(!c.adversarial_authorize(b"f", b"s"));
        c.set_corrupted();
        assert!(c.adversarial_authorize(b"f", b"s"));
        assert!(c.verify(b"f", b"s"));
    }

    #[test]
    fn real_tampered_signature_rejected() {
        let mut rng = Drbg::from_seed(b"real");
        let mut c = RealCert::new(PartyId(0), 2, &mut rng);
        let mut sig = c.sign(b"msg");
        let mid = sig.len() / 2;
        sig[mid] ^= 1;
        assert!(!c.verify(b"msg", &sig));
    }
}
