//! Universal message payloads.
//!
//! All inputs, outputs, functionality messages and adversarial commands in
//! the workspace are carried as [`Value`] trees tagged with a command name
//! ([`Command`]). Using one universal, totally ordered, hashable payload
//! type is what makes environment transcripts from the *real* and *ideal*
//! worlds directly comparable in the indistinguishability experiments.
//!
//! # Examples
//!
//! ```
//! use sbc_uc::value::{Command, Value};
//!
//! let cmd = Command::new("Broadcast", Value::bytes(b"hello"));
//! assert_eq!(cmd.name, "Broadcast");
//! assert_eq!(cmd.value.as_bytes().unwrap(), b"hello");
//! ```

use sbc_primitives::sha256::Sha256;
use std::fmt;

/// A dynamically typed, canonically encodable payload tree.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// An unsigned 64-bit integer (clock times, counters, indices).
    U64(u64),
    /// A signed 64-bit integer (decryption times may be negative in the API).
    I64(i64),
    /// An opaque byte string (messages, ciphertexts, randomness).
    Bytes(Vec<u8>),
    /// A UTF-8 string (labels).
    Str(String),
    /// An ordered list of values.
    List(Vec<Value>),
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(v) => write!(f, "{v}u64"),
            Value::I64(v) => write!(f, "{v}i64"),
            Value::Bytes(b) if b.len() <= 8 => write!(f, "0x{}", sbc_primitives::hex::encode(b)),
            Value::Bytes(b) => {
                write!(
                    f,
                    "0x{}…({}B)",
                    sbc_primitives::hex::encode(&b[..8]),
                    b.len()
                )
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => f.debug_list().entries(items).finish(),
        }
    }
}

impl Value {
    /// Builds a `Bytes` value from a slice.
    pub fn bytes(b: impl AsRef<[u8]>) -> Value {
        Value::Bytes(b.as_ref().to_vec())
    }

    /// Builds a `Str` value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds a `List` value.
    pub fn list(items: impl Into<Vec<Value>>) -> Value {
        Value::List(items.into())
    }

    /// Builds a pair as a two-element list.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::List(vec![a, b])
    }

    /// Returns the inner bool, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the inner u64, if this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the inner i64, if this is an `I64` (or a small `U64`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the inner bytes, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the inner string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the inner list, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Canonical byte encoding (prefix-free), suitable for hashing.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Unit => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::U64(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_be_bytes());
            }
            Value::I64(v) => {
                out.push(3);
                out.extend_from_slice(&v.to_be_bytes());
            }
            Value::Bytes(b) => {
                out.push(4);
                out.extend_from_slice(&(b.len() as u64).to_be_bytes());
                out.extend_from_slice(b);
            }
            Value::Str(s) => {
                out.push(5);
                out.extend_from_slice(&(s.len() as u64).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::List(items) => {
                out.push(6);
                out.extend_from_slice(&(items.len() as u64).to_be_bytes());
                for item in items {
                    item.encode_into(out);
                }
            }
        }
    }

    /// Nesting bound for [`decode`](Value::decode): protocol values nest a
    /// handful of levels, while a hostile encoding could nest one list per
    /// 9 input bytes and overflow the decoder's stack. Anything deeper
    /// than this is rejected as malformed, not recursed into.
    const MAX_DECODE_DEPTH: usize = 64;

    /// Decodes a canonical encoding produced by [`encode`](Value::encode).
    pub fn decode(bytes: &[u8]) -> Option<Value> {
        let mut pos = 0usize;
        let v = Self::decode_from(bytes, &mut pos, 0)?;
        if pos == bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    fn decode_from(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Value> {
        if depth > Self::MAX_DECODE_DEPTH {
            return None;
        }
        let tag = *bytes.get(*pos)?;
        *pos += 1;
        let read_u64 = |bytes: &[u8], pos: &mut usize| -> Option<u64> {
            let s = bytes.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(u64::from_be_bytes(s.try_into().ok()?))
        };
        match tag {
            0 => Some(Value::Unit),
            1 => {
                let b = *bytes.get(*pos)?;
                *pos += 1;
                Some(Value::Bool(b != 0))
            }
            2 => Some(Value::U64(read_u64(bytes, pos)?)),
            3 => {
                let v = read_u64(bytes, pos)?;
                Some(Value::I64(v as i64))
            }
            4 => {
                let len = read_u64(bytes, pos)? as usize;
                let b = bytes.get(*pos..*pos + len)?;
                *pos += len;
                Some(Value::Bytes(b.to_vec()))
            }
            5 => {
                let len = read_u64(bytes, pos)? as usize;
                let b = bytes.get(*pos..*pos + len)?;
                *pos += len;
                Some(Value::Str(String::from_utf8(b.to_vec()).ok()?))
            }
            6 => {
                let len = read_u64(bytes, pos)? as usize;
                let mut items = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    items.push(Self::decode_from(bytes, pos, depth + 1)?);
                }
                Some(Value::List(items))
            }
            _ => None,
        }
    }

    /// SHA-256 digest of the canonical encoding.
    pub fn digest(&self) -> [u8; 32] {
        Sha256::digest(&self.encode())
    }
}

/// A named message: the paper's `(sid, CommandName, payload…)` tuples.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Command {
    /// The command name, e.g. `"Broadcast"`, `"Enc"`, `"Advance_Clock"`.
    pub name: String,
    /// The payload.
    pub value: Value,
}

impl fmt::Debug for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.name, self.value)
    }
}

impl Command {
    /// Builds a command.
    pub fn new(name: impl Into<String>, value: Value) -> Self {
        Command {
            name: name.into(),
            value,
        }
    }

    /// Canonical encoding (name, then value).
    pub fn encode(&self) -> Vec<u8> {
        Value::pair(Value::str(self.name.clone()), self.value.clone()).encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Unit,
            Value::Bool(true),
            Value::Bool(false),
            Value::U64(0),
            Value::U64(u64::MAX),
            Value::I64(-5),
            Value::bytes(b""),
            Value::bytes(b"hello world"),
            Value::str("label"),
            Value::list([Value::U64(1), Value::str("x"), Value::list([])]),
            Value::pair(Value::bytes(b"a"), Value::Unit),
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for v in sample_values() {
            assert_eq!(Value::decode(&v.encode()), Some(v.clone()), "{v:?}");
        }
    }

    #[test]
    fn encodings_injective() {
        let vs = sample_values();
        for (i, a) in vs.iter().enumerate() {
            for (j, b) in vs.iter().enumerate() {
                if i != j {
                    assert_ne!(a.encode(), b.encode(), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = Value::U64(7).encode();
        enc.push(0);
        assert_eq!(Value::decode(&enc), None);
    }

    #[test]
    fn truncated_rejected() {
        let enc = Value::bytes(b"hello").encode();
        assert_eq!(Value::decode(&enc[..enc.len() - 1]), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::U64(3).as_u64(), Some(3));
        assert_eq!(Value::U64(3).as_i64(), Some(3));
        assert_eq!(Value::I64(-3).as_i64(), Some(-3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::bytes(b"x").as_bytes(), Some(&b"x"[..]));
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(
            Value::list([Value::Unit]).as_list().map(|l| l.len()),
            Some(1)
        );
        assert_eq!(Value::Unit.as_u64(), None);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut vs = sample_values();
        vs.sort();
        let mut again = vs.clone();
        again.sort();
        assert_eq!(vs, again);
    }

    #[test]
    fn digests_distinct() {
        assert_ne!(Value::U64(1).digest(), Value::U64(2).digest());
    }

    #[test]
    fn command_encoding_distinct_by_name() {
        let a = Command::new("A", Value::Unit);
        let b = Command::new("B", Value::Unit);
        assert_ne!(a.encode(), b.encode());
    }
}
