//! Identities: parties, sessions, and the unique random tags used by the
//! broadcast functionalities.
//!
//! # Examples
//!
//! ```
//! use sbc_uc::ids::PartyId;
//!
//! let parties = PartyId::all(4);
//! assert_eq!(parties.len(), 4);
//! assert_eq!(parties[2], PartyId(2));
//! ```

use sbc_primitives::drbg::Drbg;
use std::fmt;

/// A protocol party identity (`P_i` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartyId(pub u32);

impl fmt::Debug for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl PartyId {
    /// The party set `{P_0, …, P_{n-1}}`.
    pub fn all(n: usize) -> Vec<PartyId> {
        (0..n as u32).map(PartyId).collect()
    }

    /// Index into party-ordered vectors.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// A session identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct SessionId(pub u64);

/// A unique random tag (the functionalities' `tag ∈ {0,1}^λ`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub [u8; 16]);

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag:{}", sbc_primitives::hex::encode(&self.0[..4]))
    }
}

impl Tag {
    /// Samples a fresh tag from `rng`.
    pub fn random(rng: &mut Drbg) -> Tag {
        let b = rng.gen_bytes(16);
        let mut t = [0u8; 16];
        t.copy_from_slice(&b);
        Tag(t)
    }

    /// The tag as bytes (for embedding in [`Value`]s).
    ///
    /// [`Value`]: crate::value::Value
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Parses a tag from bytes.
    pub fn from_bytes(b: &[u8]) -> Option<Tag> {
        if b.len() != 16 {
            return None;
        }
        let mut t = [0u8; 16];
        t.copy_from_slice(b);
        Some(Tag(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_all_and_index() {
        let ps = PartyId::all(3);
        assert_eq!(ps, vec![PartyId(0), PartyId(1), PartyId(2)]);
        assert_eq!(ps[1].index(), 1);
    }

    #[test]
    fn tags_unique_per_rng() {
        let mut rng = Drbg::from_seed(b"tags");
        let a = Tag::random(&mut rng);
        let b = Tag::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn tag_bytes_round_trip() {
        let mut rng = Drbg::from_seed(b"tags");
        let t = Tag::random(&mut rng);
        assert_eq!(Tag::from_bytes(t.as_bytes()), Some(t));
        assert_eq!(Tag::from_bytes(&[0u8; 5]), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", PartyId(7)), "P7");
        assert_eq!(format!("{:?}", PartyId(7)), "P7");
    }
}
