//! The random oracle functionality `F_RO` (paper Fig. 3), with the
//! *programming* interface that UC simulators use for equivocation.
//!
//! Queries are attributed to a [`Caller`] so that simulators can check the
//! abort condition of the security proofs ("has the adversary already
//! queried ρ?") and experiments can account per-entity query costs.
//!
//! # Examples
//!
//! ```
//! use sbc_uc::ro::{Caller, RandomOracle};
//! use sbc_primitives::drbg::Drbg;
//!
//! let mut ro = RandomOracle::new(Drbg::from_seed(b"doc"));
//! let y1 = ro.query(Caller::Party(sbc_uc::ids::PartyId(0)), b"x");
//! let y2 = ro.query(Caller::Adversary, b"x");
//! assert_eq!(y1, y2); // consistent table
//! ```

use crate::ids::PartyId;
use sbc_primitives::drbg::Drbg;
use std::collections::HashMap;

/// Who issued a random-oracle query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Caller {
    /// An honest protocol party.
    Party(PartyId),
    /// The real-world adversary (or environment via a corrupted party).
    Adversary,
    /// The simulator (internal queries do not count as adversarial).
    Simulator,
}

/// Error returned by [`RandomOracle::program`] when the point was already
/// fixed — the abort event of the equivocation simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlreadyDefined;

impl std::fmt::Display for AlreadyDefined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "random oracle point already defined")
    }
}

impl std::error::Error for AlreadyDefined {}

/// One memoised oracle point, as captured by a recording clone
/// ([`RandomOracle::record_fresh_points`]) and replayed into the live
/// oracle via [`RandomOracle::warm`] — the currency of the two-phase
/// (parallel compute, serial merge) round schedulers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoPoint {
    /// A fixed-width point `H(x)`.
    Fixed {
        /// The query input.
        x: Vec<u8>,
        /// The oracle output.
        y: [u8; 32],
    },
    /// A variable-output-length point `H(x; y.len())`.
    Var {
        /// The query input.
        x: Vec<u8>,
        /// The oracle output (its length identifies the point).
        y: Vec<u8>,
    },
}

/// A programmable random oracle with λ = 256-bit outputs.
///
/// Sampling is *input-addressed*: an unprogrammed point `x` always maps to
/// `PRF(seed, x)`, independent of query order. This preserves the
/// random-oracle contract (fresh uniform value per point, consistency
/// across queries) while making executions reproducible: a real and an
/// ideal world constructed from the same seed agree on every unprogrammed
/// point, which is what lets the indistinguishability tests compare
/// transcripts bit-for-bit.
///
/// Input-addressing is also what licenses **parallel party sharding** in
/// the execution backends: the value of an unprogrammed point does not
/// depend on query order, so per-party round compute may evaluate points
/// against a read-only snapshot ([`peek`](RandomOracle::peek) /
/// [`peek_bytes`](RandomOracle::peek_bytes)) and the serial merge replays
/// the observable effects afterwards ([`warm`](RandomOracle::warm) /
/// [`absorb_party_queries`](RandomOracle::absorb_party_queries)).
#[derive(Clone, Debug)]
pub struct RandomOracle {
    table: HashMap<Vec<u8>, [u8; 32]>,
    /// Variable-output-length points keyed by `(len ‖ x)`.
    vl_table: HashMap<Vec<u8>, Vec<u8>>,
    /// Points queried by the adversary (for simulator abort checks).
    adversary_queried: HashMap<Vec<u8>, ()>,
    programmed: HashMap<Vec<u8>, ()>,
    key: [u8; 32],
    query_count: u64,
    /// When `Some`, every freshly computed point is journaled (recording
    /// clones used by parallel compute phases).
    recorded: Option<Vec<RoPoint>>,
}

impl RandomOracle {
    /// Creates an oracle keyed from `rng`.
    pub fn new(mut rng: Drbg) -> Self {
        let raw = rng.gen_bytes(32);
        let mut key = [0u8; 32];
        key.copy_from_slice(&raw);
        RandomOracle {
            table: HashMap::new(),
            vl_table: HashMap::new(),
            adversary_queried: HashMap::new(),
            programmed: HashMap::new(),
            key,
            query_count: 0,
            recorded: None,
        }
    }

    /// `Query`: returns `H(x)`.
    pub fn query(&mut self, caller: Caller, x: &[u8]) -> [u8; 32] {
        self.query_count += 1;
        if caller == Caller::Adversary {
            self.adversary_queried.insert(x.to_vec(), ());
        }
        if let Some(y) = self.table.get(x) {
            return *y;
        }
        let y = sbc_primitives::hmac::hmac_sha256(&self.key, x);
        self.table.insert(x.to_vec(), y);
        if let Some(journal) = &mut self.recorded {
            journal.push(RoPoint::Fixed { x: x.to_vec(), y });
        }
        y
    }

    /// Read-only peek at `H(x)` without recording a query. Used by
    /// simulators that must predict what an honest party's query would
    /// return (legitimate because simulators control the oracle).
    pub fn peek(&self, x: &[u8]) -> [u8; 32] {
        if let Some(y) = self.table.get(x) {
            return *y;
        }
        sbc_primitives::hmac::hmac_sha256(&self.key, x)
    }

    fn vl_key(x: &[u8], len: usize) -> Vec<u8> {
        let mut k = (len as u64).to_be_bytes().to_vec();
        k.extend_from_slice(x);
        k
    }

    /// Variable-output-length query `H(x; len)` — a family of independent
    /// oracles indexed by output length (how the SBC protocol derives masks
    /// matching each message's size). Distinct lengths are independent
    /// points, each individually programmable.
    pub fn query_bytes(&mut self, caller: Caller, x: &[u8], len: usize) -> Vec<u8> {
        self.query_count += 1;
        let key = Self::vl_key(x, len);
        if caller == Caller::Adversary {
            self.adversary_queried.insert(key.clone(), ());
        }
        if let Some(y) = self.vl_table.get(&key) {
            return y.clone();
        }
        let y = self.expand(&key, len);
        self.vl_table.insert(key, y.clone());
        if let Some(journal) = &mut self.recorded {
            journal.push(RoPoint::Var {
                x: x.to_vec(),
                y: y.clone(),
            });
        }
        y
    }

    /// Read-only peek at `H(x; len)` without recording a query — the
    /// variable-length sibling of [`peek`](RandomOracle::peek). Parallel
    /// compute phases derive party masks from an immutable oracle snapshot
    /// this way; the serial merge replays the observable query effects via
    /// [`absorb_party_queries`](RandomOracle::absorb_party_queries).
    pub fn peek_bytes(&self, x: &[u8], len: usize) -> Vec<u8> {
        let key = Self::vl_key(x, len);
        if let Some(y) = self.vl_table.get(&key) {
            return y.clone();
        }
        self.expand(&key, len)
    }

    /// Turns fresh-point journaling on: every point computed (not hit in
    /// the memo tables) from here on is captured for
    /// [`take_recorded`](RandomOracle::take_recorded). Used on **clones**
    /// by parallel compute phases to learn which points a party's round
    /// step materializes, so the serial merge can
    /// [`warm`](RandomOracle::warm) the live oracle instead of recomputing.
    pub fn record_fresh_points(&mut self) {
        self.recorded = Some(Vec::new());
    }

    /// Drains the fresh-point journal (empty if recording was never turned
    /// on) and stops recording.
    pub fn take_recorded(&mut self) -> Vec<RoPoint> {
        self.recorded.take().unwrap_or_default()
    }

    /// Pre-populates the memo tables with `points`, skipping any point that
    /// is already defined. Values must equal what the oracle would compute
    /// itself (debug-asserted) — warming is a pure cache operation: it
    /// never bumps [`query_count`](RandomOracle::query_count), never marks
    /// adversary queries, and in a world where nobody programs the oracle
    /// it is unobservable, which is exactly why the two-phase round
    /// schedulers may warm speculatively.
    pub fn warm(&mut self, points: &[RoPoint]) {
        for p in points {
            match p {
                RoPoint::Fixed { x, y } => {
                    debug_assert_eq!(*y, self.peek(x), "warmed point disagrees with the PRF");
                    self.table.entry(x.clone()).or_insert(*y);
                }
                RoPoint::Var { x, y } => {
                    debug_assert_eq!(
                        *y,
                        self.peek_bytes(x, y.len()),
                        "warmed point disagrees with the PRF"
                    );
                    self.vl_table
                        .entry(Self::vl_key(x, y.len()))
                        .or_insert_with(|| y.clone());
                }
            }
        }
    }

    /// Replays the observable effects of honest-party `query_bytes` calls
    /// whose values were precomputed against a snapshot
    /// ([`peek_bytes`](RandomOracle::peek_bytes)): one query-count bump per
    /// entry (duplicates included, exactly as the inline queries would
    /// have) plus the memo insert. Party queries never touch the
    /// adversary-query set, so the result is bit-identical oracle state.
    pub fn absorb_party_queries(&mut self, queries: &[(Vec<u8>, Vec<u8>)]) {
        for (x, y) in queries {
            self.query_count += 1;
            debug_assert_eq!(
                *y,
                self.peek_bytes(x, y.len()),
                "absorbed query disagrees with the PRF"
            );
            self.vl_table
                .entry(Self::vl_key(x, y.len()))
                .or_insert_with(|| y.clone());
        }
    }

    /// [`absorb_party_queries`](RandomOracle::absorb_party_queries) for
    /// queries whose points are **already** in the memo tables — a plan
    /// reissued from an original that was [`warm`](RandomOracle::warm)ed.
    /// The memo inserts are then no-ops, so the only observable effect left
    /// to replay is the query counter: one bump per query, exactly as the
    /// inline `query_bytes` calls would have. Debug builds assert every
    /// point really is memoized.
    pub fn replay_warmed_queries(&mut self, queries: &[(Vec<u8>, Vec<u8>)]) {
        debug_assert!(
            queries
                .iter()
                .all(|(x, y)| self.vl_table.contains_key(&Self::vl_key(x, y.len()))),
            "replayed query was never warmed into the memo table"
        );
        self.query_count += queries.len() as u64;
    }

    fn expand(&self, key: &[u8], len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut ctr = 0u64;
        while out.len() < len {
            let mut input = ctr.to_be_bytes().to_vec();
            input.extend_from_slice(key);
            let block = sbc_primitives::hmac::hmac_sha256(&self.key, &input);
            let take = (len - out.len()).min(block.len());
            out.extend_from_slice(&block[..take]);
            ctr += 1;
        }
        out
    }

    /// Simulator-only: fixes `H(x; y.len()) = y` for an unqueried point.
    ///
    /// # Errors
    ///
    /// Returns [`AlreadyDefined`] if the point was already fixed (the
    /// equivocation-abort event).
    pub fn program_bytes(&mut self, x: &[u8], y: Vec<u8>) -> Result<(), AlreadyDefined> {
        let key = Self::vl_key(x, y.len());
        if self.vl_table.contains_key(&key) {
            return Err(AlreadyDefined);
        }
        self.programmed.insert(key.clone(), ());
        self.vl_table.insert(key, y);
        Ok(())
    }

    /// Whether the adversary queried the variable-length point `(x, len)`.
    pub fn adversary_queried_bytes(&self, x: &[u8], len: usize) -> bool {
        self.adversary_queried.contains_key(&Self::vl_key(x, len))
    }

    /// Simulator-only: fixes `H(x) = y` for a not-yet-queried point.
    ///
    /// # Errors
    ///
    /// Returns [`AlreadyDefined`] if `x` was already queried or programmed —
    /// this is exactly the negligible-probability abort event in the
    /// paper's simulation proofs.
    pub fn program(&mut self, x: &[u8], y: [u8; 32]) -> Result<(), AlreadyDefined> {
        if self.table.contains_key(x) {
            return Err(AlreadyDefined);
        }
        self.table.insert(x.to_vec(), y);
        self.programmed.insert(x.to_vec(), ());
        Ok(())
    }

    /// Whether any caller has fixed/queried the point.
    pub fn is_defined(&self, x: &[u8]) -> bool {
        self.table.contains_key(x)
    }

    /// Whether the adversary has queried the point (abort-check predicate).
    pub fn adversary_queried(&self, x: &[u8]) -> bool {
        self.adversary_queried.contains_key(x)
    }

    /// Whether the point was set via [`program`](RandomOracle::program).
    pub fn was_programmed(&self, x: &[u8]) -> bool {
        self.programmed.contains_key(x)
    }

    /// Total number of queries served.
    pub fn query_count(&self) -> u64 {
        self.query_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ro() -> RandomOracle {
        RandomOracle::new(Drbg::from_seed(b"ro-tests"))
    }

    #[test]
    fn consistent_answers() {
        let mut r = ro();
        let y1 = r.query(Caller::Party(PartyId(0)), b"a");
        let y2 = r.query(Caller::Party(PartyId(1)), b"a");
        assert_eq!(y1, y2);
    }

    #[test]
    fn distinct_points_distinct_outputs() {
        let mut r = ro();
        assert_ne!(
            r.query(Caller::Adversary, b"a"),
            r.query(Caller::Adversary, b"b")
        );
    }

    #[test]
    fn programming_before_query_succeeds() {
        let mut r = ro();
        r.program(b"p", [7u8; 32]).unwrap();
        assert_eq!(r.query(Caller::Party(PartyId(0)), b"p"), [7u8; 32]);
        assert!(r.was_programmed(b"p"));
    }

    #[test]
    fn programming_after_query_fails() {
        let mut r = ro();
        r.query(Caller::Adversary, b"p");
        assert_eq!(r.program(b"p", [7u8; 32]), Err(AlreadyDefined));
    }

    #[test]
    fn double_programming_fails() {
        let mut r = ro();
        r.program(b"p", [7u8; 32]).unwrap();
        assert_eq!(r.program(b"p", [8u8; 32]), Err(AlreadyDefined));
    }

    #[test]
    fn adversary_query_tracking() {
        let mut r = ro();
        r.query(Caller::Party(PartyId(0)), b"honest");
        r.query(Caller::Simulator, b"sim");
        r.query(Caller::Adversary, b"adv");
        assert!(!r.adversary_queried(b"honest"));
        assert!(!r.adversary_queried(b"sim"));
        assert!(r.adversary_queried(b"adv"));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ro();
        let mut b = ro();
        assert_eq!(
            a.query(Caller::Adversary, b"x"),
            b.query(Caller::Adversary, b"x")
        );
    }

    #[test]
    fn query_count_tracks() {
        let mut r = ro();
        r.query(Caller::Adversary, b"x");
        r.query(Caller::Adversary, b"x");
        assert_eq!(r.query_count(), 2);
    }

    #[test]
    fn peek_matches_query_without_recording() {
        let mut r = ro();
        let peeked = r.peek(b"p");
        assert_eq!(r.query_count(), 0);
        assert_eq!(r.query(Caller::Simulator, b"p"), peeked);
    }

    #[test]
    fn query_bytes_lengths_are_independent_points() {
        let mut r = ro();
        let y16 = r.query_bytes(Caller::Simulator, b"x", 16);
        let y32 = r.query_bytes(Caller::Simulator, b"x", 32);
        assert_eq!(y16.len(), 16);
        assert_eq!(y32.len(), 32);
        assert_ne!(&y32[..16], &y16[..], "independent oracles per length");
        // Consistent per point.
        assert_eq!(r.query_bytes(Caller::Adversary, b"x", 16), y16);
    }

    #[test]
    fn query_bytes_long_outputs() {
        let mut r = ro();
        let y = r.query_bytes(Caller::Simulator, b"long", 100);
        assert_eq!(y.len(), 100);
        assert_eq!(r.query_bytes(Caller::Simulator, b"long", 100), y);
        assert!(r.query_bytes(Caller::Simulator, b"long", 0).is_empty());
    }

    #[test]
    fn program_bytes_equivocation() {
        let mut r = ro();
        r.program_bytes(b"rho", vec![7u8; 20]).unwrap();
        assert_eq!(
            r.query_bytes(Caller::Party(PartyId(0)), b"rho", 20),
            vec![7u8; 20]
        );
        // Same point again: already defined.
        assert_eq!(r.program_bytes(b"rho", vec![8u8; 20]), Err(AlreadyDefined));
        // Different length: a fresh point, still programmable.
        assert!(r.program_bytes(b"rho", vec![9u8; 21]).is_ok());
    }

    #[test]
    fn program_bytes_after_query_fails() {
        let mut r = ro();
        r.query_bytes(Caller::Adversary, b"taken", 8);
        assert_eq!(r.program_bytes(b"taken", vec![0u8; 8]), Err(AlreadyDefined));
        assert!(r.adversary_queried_bytes(b"taken", 8));
        assert!(!r.adversary_queried_bytes(b"taken", 9));
    }

    #[test]
    fn peek_bytes_matches_query_bytes_without_recording() {
        let mut r = ro();
        let peeked = r.peek_bytes(b"x", 48);
        assert_eq!(r.query_count(), 0);
        assert_eq!(r.query_bytes(Caller::Party(PartyId(0)), b"x", 48), peeked);
        // Programmed points are visible to peeks too.
        let mut r2 = ro();
        r2.program_bytes(b"p", vec![9u8; 16]).unwrap();
        assert_eq!(r2.peek_bytes(b"p", 16), vec![9u8; 16]);
    }

    #[test]
    fn recording_clone_captures_exactly_the_fresh_points() {
        let mut r = ro();
        r.query(Caller::Simulator, b"old");
        let mut clone = r.clone();
        clone.record_fresh_points();
        clone.query(Caller::Simulator, b"old"); // memo hit: not recorded
        let y_new = clone.query(Caller::Simulator, b"new");
        let y_var = clone.query_bytes(Caller::Simulator, b"v", 10);
        let recorded = clone.take_recorded();
        assert_eq!(
            recorded,
            vec![
                RoPoint::Fixed {
                    x: b"new".to_vec(),
                    y: y_new
                },
                RoPoint::Var {
                    x: b"v".to_vec(),
                    y: y_var.clone()
                },
            ]
        );
        assert!(clone.take_recorded().is_empty(), "recording stopped");
        // Warming the original with the journal is query-invisible...
        r.warm(&recorded);
        assert_eq!(r.query_count(), 1);
        // ...and later queries agree bit-for-bit.
        assert_eq!(r.query(Caller::Simulator, b"new"), y_new);
        assert_eq!(r.query_bytes(Caller::Simulator, b"v", 10), y_var);
    }

    #[test]
    fn absorb_party_queries_matches_inline_queries() {
        let mut inline = ro();
        let mut absorbed = ro();
        let eta = inline.query_bytes(Caller::Party(PartyId(0)), b"rho", 20);
        let eta2 = inline.query_bytes(Caller::Party(PartyId(1)), b"rho", 20);
        assert_eq!(eta, eta2);
        let precomputed = absorbed.peek_bytes(b"rho", 20);
        absorbed.absorb_party_queries(&[
            (b"rho".to_vec(), precomputed.clone()),
            (b"rho".to_vec(), precomputed),
        ]);
        assert_eq!(absorbed.query_count(), inline.query_count());
        assert_eq!(
            absorbed.query_bytes(Caller::Simulator, b"rho", 20),
            inline.query_bytes(Caller::Simulator, b"rho", 20)
        );
        assert!(!absorbed.adversary_queried_bytes(b"rho", 20));
    }

    #[test]
    fn fixed_and_variable_tables_are_disjoint() {
        let mut r = ro();
        let fixed = r.query(Caller::Simulator, b"x");
        let vl = r.query_bytes(Caller::Simulator, b"x", 32);
        assert_ne!(
            fixed.to_vec(),
            vl,
            "32-byte VL point is not the fixed point"
        );
    }
}
