//! `sbc-serve` — the long-lived simultaneous-broadcast service binary.
//!
//! Runs an `sbc-service` instance in one of the paper's three application
//! modes over any protocol backend, feeds it a seeded synthetic load,
//! streams outcomes as they release, and performs a **kill-mid-epoch
//! drill**: once the run is demonstrably mid-epoch, the service is
//! snapshotted, a twin is restored from the image, and both are driven
//! through the identical remaining schedule — every release must match
//! bit-for-bit. A final end-of-run snapshot/restore self-check closes the
//! run.
//!
//! ```sh
//! cargo run -p sbc-bench --example sbc_serve --release -- \
//!     [--mode beacon|election|auction] \
//!     [--backend real|loopback|simnet|tcp] \
//!     [--total N] [--smoke] \
//!     [--snapshot-path FILE] [--restore-from FILE]
//! ```
//!
//! Defaults: beacon mode, the in-process `RealSbcWorld` backend, 2000
//! submissions. `--backend tcp` runs every party link over OS loopback
//! sockets (and the restored twin brings up its own fresh lanes).
//! `--smoke` shrinks the run for CI (200 submissions, quiet per-release
//! output). `--snapshot-path` checkpoints the drained service at the end
//! of the run and streams an era-based snapshot into FILE;
//! `--restore-from` boots the service from such a file instead of fresh,
//! continuing its eras — together they give `sbc-serve` real
//! stop-the-process/resume-the-process persistence.

use sbc_core::pool::PoolFootprint;
use sbc_core::worlds::{RealSbcWorld, SbcBackend};
use sbc_net::{LoopbackSbcWorld, SimNetSbcWorld, TcpSbcWorld};
use sbc_service::{
    LoadGen, LoadProfile, Outcome, SbcService, ServiceConfig, ServiceError, ServiceMode,
};

/// Parsed command line.
struct Args {
    mode: ServiceMode,
    backend: String,
    total: u64,
    smoke: bool,
    snapshot_path: Option<String>,
    restore_from: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: ServiceMode::Beacon,
        backend: "real".to_string(),
        total: 2000,
        smoke: false,
        snapshot_path: None,
        restore_from: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--mode" => {
                args.mode = match it.next().as_deref() {
                    Some("beacon") => ServiceMode::Beacon,
                    Some("election") => ServiceMode::Election,
                    Some("auction") => ServiceMode::Auction,
                    other => die(&format!("--mode beacon|election|auction, got {other:?}")),
                }
            }
            "--backend" => match it.next() {
                Some(b) if ["real", "loopback", "simnet", "tcp"].contains(&b.as_str()) => {
                    args.backend = b;
                }
                other => die(&format!(
                    "--backend real|loopback|simnet|tcp, got {other:?}"
                )),
            },
            "--total" => {
                args.total = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--total expects a number"));
            }
            "--smoke" => args.smoke = true,
            "--snapshot-path" => {
                args.snapshot_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--snapshot-path expects a file")),
                );
            }
            "--restore-from" => {
                args.restore_from = Some(
                    it.next()
                        .unwrap_or_else(|| die("--restore-from expects a file")),
                );
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if args.smoke {
        args.total = args.total.min(200);
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("sbc-serve: {msg}");
    std::process::exit(2);
}

fn mode_name(mode: ServiceMode) -> &'static str {
    match mode {
        ServiceMode::Beacon => "beacon",
        ServiceMode::Election => "election",
        ServiceMode::Auction => "auction",
    }
}

/// Mode-appropriate synthetic load: entropy for the beacon, single-byte
/// votes for elections, 8-byte bids for auctions.
fn profile(mode: ServiceMode, total: u64) -> LoadProfile {
    let mut p = LoadProfile::beacon(total, 48);
    p.payload_len = match mode {
        ServiceMode::Beacon => 32,
        ServiceMode::Election => 1,
        ServiceMode::Auction => 8,
    };
    p
}

fn describe(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Beacon(bytes) => format!("beacon {}", sbc_primitives::hex::encode(&bytes[..8])),
        Outcome::Election { winner, votes } => {
            format!("candidate {winner} wins with {votes} votes")
        }
        Outcome::Auction { winner, bid } => format!("message #{winner} wins at bid {bid}"),
    }
}

/// Stats with the observational fields masked off: the wall histogram is
/// deliberately excluded from snapshots (a restored service reports
/// `wall: None`), and `snapshot_bytes` records image sizes that
/// legitimately differ between a service and its restored twin —
/// comparisons must cover everything else.
fn replayable(svc: &SbcService<impl SbcBackend>) -> sbc_service::ServiceStats {
    let mut stats = svc.stats();
    stats.wall = None;
    stats.snapshot_bytes = 0;
    stats
}

fn serve<W: SbcBackend>(args: &Args) -> Result<(), ServiceError> {
    // Boot: fresh, or resumed from an era-based snapshot file.
    let mut svc: SbcService<W> = match &args.restore_from {
        Some(path) => {
            let mut file = std::fs::File::open(path)
                .unwrap_or_else(|e| die(&format!("--restore-from {path}: {e}")));
            let svc = SbcService::restore_from(&mut file)?;
            println!(
                "restored from {path}: era {} @round {} ({} delivered so far)",
                svc.era(),
                svc.round(),
                svc.stats().delivered
            );
            svc
        }
        None => SbcService::new(
            ServiceConfig::new(4, args.mode)
                .seed(b"sbc-serve")
                .record_wall_clock(true),
        )?,
    };
    // The load this run adds on top of whatever the restored image
    // already processed.
    let base = svc.stats();
    let mut gen = LoadGen::new(profile(args.mode, args.total), b"sbc-serve");

    println!(
        "sbc-serve: mode={} backend={} submissions={}",
        mode_name(args.mode),
        args.backend,
        args.total
    );

    // The kill-mid-epoch drill: once the run has both delivered records
    // (exercising the don't-redeliver path) and live instances (truly
    // mid-epoch), snapshot, restore a twin, fast-forward a twin load
    // generator to the same point — the load is a pure function of
    // (profile, seed, ticks consumed) — and drive both services through
    // the identical remaining schedule, demanding bit-identical releases
    // at every tick.
    let mut twin: Option<(SbcService<W>, LoadGen)> = None;
    let mut drilled = false;
    let mut gen_ticks = 0u64;

    let mut released = 0u64;
    while !gen.done() || svc.queued() > 0 || svc.live() > 0 {
        if !drilled && released > 0 && svc.live() > 0 {
            drilled = true;
            let image = svc.snapshot()?;
            let restored: SbcService<W> = SbcService::restore(&image)?;
            assert_eq!(restored.round(), svc.round(), "kill drill: clock agrees");
            assert_eq!(
                replayable(&restored),
                replayable(&svc),
                "kill drill: stats agree"
            );
            let mut tg = LoadGen::new(profile(args.mode, args.total), b"sbc-serve");
            for _ in 0..gen_ticks {
                tg.next_tick();
            }
            println!(
                "kill drill @round {}: restored a twin from a {} byte mid-epoch image",
                svc.round(),
                image.len()
            );
            twin = Some((restored, tg));
        }
        gen_ticks += 1;
        for s in gen.next_tick() {
            // Bounded queue: on saturation the submission waits for the
            // next tick (the generator's stream is deterministic, so the
            // retry order is too).
            if let Err(ServiceError::QueueFull { .. }) = svc.submit(s.client, s.payload, s.class) {
                break;
            }
        }
        svc.tick()?;
        let records = svc.drain_releases();
        if let Some((t, tg)) = &mut twin {
            for s in tg.next_tick() {
                if let Err(ServiceError::QueueFull { .. }) = t.submit(s.client, s.payload, s.class)
                {
                    break;
                }
            }
            t.tick()?;
            assert_eq!(
                t.drain_releases(),
                records,
                "kill drill: restored run releases bit-identically"
            );
        }
        for record in records {
            released += 1;
            if !args.smoke && released <= 8 {
                println!(
                    "  release @round {}: {} submissions → {}",
                    record.release_round,
                    record.tickets.len(),
                    describe(&record.outcome)
                );
            }
        }
    }

    if let Some((t, _)) = &twin {
        assert_eq!(
            replayable(t),
            replayable(&svc),
            "kill drill: restored run ends in the same state"
        );
        assert_eq!(t.footprint(), PoolFootprint::default());
        println!("kill drill passed: restored run stayed bit-identical to the end");
    }

    // Snapshot/restore self-check: the restored service agrees with the
    // original on clock, stats, and (by construction) all future output.
    let image = svc.snapshot()?;
    let restored: SbcService<W> = SbcService::restore(&image)?;
    assert_eq!(restored.round(), svc.round(), "restore: clock agrees");
    assert_eq!(
        replayable(&restored),
        replayable(&svc),
        "restore: stats agree"
    );

    let stats = svc.stats();
    assert_eq!(
        stats.accepted,
        base.accepted + args.total,
        "every submission accepted"
    );
    assert_eq!(
        stats.latency.count,
        base.latency.count + args.total,
        "every submission released"
    );
    assert_eq!(
        svc.footprint(),
        PoolFootprint::default(),
        "steady-state memory flat after drain"
    );

    // Persistence: fold the drained run into a checkpoint and stream the
    // era-based image to disk — `--restore-from` picks it up next boot.
    if let Some(path) = &args.snapshot_path {
        assert!(
            svc.try_checkpoint(),
            "drained service must sit at an era boundary"
        );
        let mut file = std::fs::File::create(path)
            .unwrap_or_else(|e| die(&format!("--snapshot-path {path}: {e}")));
        let written = svc.snapshot_to(&mut file)?;
        println!(
            "checkpointed into era {} and wrote a {} byte snapshot to {path}",
            svc.era(),
            written
        );
    }
    println!(
        "done: {} released over {} instances in {} rounds | latency rounds p50={} p90={} p99={} max={} | peak live={} peak queue={} deferred={} leak-overflow={}",
        stats.latency.count,
        stats.finished,
        stats.round,
        stats.latency.p50,
        stats.latency.p90,
        stats.latency.p99,
        stats.latency.max,
        stats.peak_live,
        stats.peak_queue,
        stats.deferred,
        stats.leak_overflow,
    );
    if let Some(wall) = stats.wall {
        println!(
            "wall-clock latency: p50≤{}µs p90≤{}µs p99≤{}µs max={}µs mean={}µs over {} submissions",
            wall.p50_us, wall.p90_us, wall.p99_us, wall.max_us, wall.mean_us, wall.count,
        );
    }
    println!(
        "snapshot/restore self-check passed ({} byte image)",
        image.len()
    );
    Ok(())
}

fn main() -> Result<(), ServiceError> {
    let args = parse_args();
    match args.backend.as_str() {
        "real" => serve::<RealSbcWorld>(&args),
        "loopback" => serve::<LoopbackSbcWorld>(&args),
        "simnet" => serve::<SimNetSbcWorld>(&args),
        "tcp" => serve::<TcpSbcWorld>(&args),
        _ => unreachable!("validated by parse_args"),
    }
}
