//! `sbc-serve` — the long-lived simultaneous-broadcast service binary.
//!
//! Runs an `sbc-service` instance in one of the paper's three application
//! modes over any protocol backend, feeds it a seeded synthetic load,
//! streams outcomes as they release, and finishes with a snapshot/restore
//! self-check (the restored service must agree with the original
//! bit-for-bit).
//!
//! ```sh
//! cargo run -p sbc-bench --example sbc_serve --release -- \
//!     [--mode beacon|election|auction] \
//!     [--backend real|loopback|simnet] \
//!     [--total N] [--smoke]
//! ```
//!
//! Defaults: beacon mode, the in-process `RealSbcWorld` backend, 2000
//! submissions. `--smoke` shrinks the run for CI (200 submissions, quiet
//! per-release output).

use sbc_core::pool::PoolFootprint;
use sbc_core::worlds::{RealSbcWorld, SbcBackend};
use sbc_net::{LoopbackSbcWorld, SimNetSbcWorld};
use sbc_service::{
    LoadGen, LoadProfile, Outcome, SbcService, ServiceConfig, ServiceError, ServiceMode,
};

/// Parsed command line.
struct Args {
    mode: ServiceMode,
    backend: String,
    total: u64,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: ServiceMode::Beacon,
        backend: "real".to_string(),
        total: 2000,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--mode" => {
                args.mode = match it.next().as_deref() {
                    Some("beacon") => ServiceMode::Beacon,
                    Some("election") => ServiceMode::Election,
                    Some("auction") => ServiceMode::Auction,
                    other => die(&format!("--mode beacon|election|auction, got {other:?}")),
                }
            }
            "--backend" => match it.next() {
                Some(b) if ["real", "loopback", "simnet"].contains(&b.as_str()) => {
                    args.backend = b;
                }
                other => die(&format!("--backend real|loopback|simnet, got {other:?}")),
            },
            "--total" => {
                args.total = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--total expects a number"));
            }
            "--smoke" => args.smoke = true,
            other => die(&format!("unknown flag {other}")),
        }
    }
    if args.smoke {
        args.total = args.total.min(200);
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("sbc-serve: {msg}");
    std::process::exit(2);
}

fn mode_name(mode: ServiceMode) -> &'static str {
    match mode {
        ServiceMode::Beacon => "beacon",
        ServiceMode::Election => "election",
        ServiceMode::Auction => "auction",
    }
}

/// Mode-appropriate synthetic load: entropy for the beacon, single-byte
/// votes for elections, 8-byte bids for auctions.
fn profile(mode: ServiceMode, total: u64) -> LoadProfile {
    let mut p = LoadProfile::beacon(total, 48);
    p.payload_len = match mode {
        ServiceMode::Beacon => 32,
        ServiceMode::Election => 1,
        ServiceMode::Auction => 8,
    };
    p
}

fn describe(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Beacon(bytes) => format!("beacon {}", sbc_primitives::hex::encode(&bytes[..8])),
        Outcome::Election { winner, votes } => {
            format!("candidate {winner} wins with {votes} votes")
        }
        Outcome::Auction { winner, bid } => format!("message #{winner} wins at bid {bid}"),
    }
}

fn serve<W: SbcBackend>(args: &Args) -> Result<(), ServiceError> {
    let cfg = ServiceConfig::new(4, args.mode).seed(b"sbc-serve");
    let mut svc: SbcService<W> = SbcService::new(cfg)?;
    let mut gen = LoadGen::new(profile(args.mode, args.total), b"sbc-serve");

    println!(
        "sbc-serve: mode={} backend={} submissions={}",
        mode_name(args.mode),
        args.backend,
        args.total
    );

    let mut released = 0u64;
    while !gen.done() || svc.queued() > 0 || svc.live() > 0 {
        for s in gen.next_tick() {
            // Bounded queue: on saturation the submission waits for the
            // next tick (the generator's stream is deterministic, so the
            // retry order is too).
            if let Err(ServiceError::QueueFull { .. }) = svc.submit(s.client, s.payload, s.class) {
                break;
            }
        }
        svc.tick()?;
        for record in svc.drain_releases() {
            released += 1;
            if !args.smoke && released <= 8 {
                println!(
                    "  release @round {}: {} submissions → {}",
                    record.release_round,
                    record.tickets.len(),
                    describe(&record.outcome)
                );
            }
        }
    }

    // Snapshot/restore self-check: the restored service agrees with the
    // original on clock, stats, and (by construction) all future output.
    let image = svc.snapshot()?;
    let restored: SbcService<W> = SbcService::restore(&image)?;
    assert_eq!(restored.round(), svc.round(), "restore: clock agrees");
    assert_eq!(restored.stats(), svc.stats(), "restore: stats agree");

    let stats = svc.stats();
    assert_eq!(stats.accepted, args.total, "every submission accepted");
    assert_eq!(stats.latency.count, args.total, "every submission released");
    assert_eq!(
        svc.footprint(),
        PoolFootprint::default(),
        "steady-state memory flat after drain"
    );
    println!(
        "done: {} released over {} instances in {} rounds | latency rounds p50={} p90={} p99={} max={} | peak live={} peak queue={} deferred={} leak-overflow={}",
        stats.latency.count,
        stats.finished,
        stats.round,
        stats.latency.p50,
        stats.latency.p90,
        stats.latency.p99,
        stats.latency.max,
        stats.peak_live,
        stats.peak_queue,
        stats.deferred,
        stats.leak_overflow,
    );
    println!(
        "snapshot/restore self-check passed ({} byte image)",
        image.len()
    );
    Ok(())
}

fn main() -> Result<(), ServiceError> {
    let args = parse_args();
    match args.backend.as_str() {
        "real" => serve::<RealSbcWorld>(&args),
        "loopback" => serve::<LoopbackSbcWorld>(&args),
        "simnet" => serve::<SimNetSbcWorld>(&args),
        _ => unreachable!("validated by parse_args"),
    }
}
