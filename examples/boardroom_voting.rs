//! Boardroom voting: a self-tallying election without a trusted tallier
//! or control voter (paper §6.2), with two successive motions decided on
//! the same registered electorate.
//!
//! ```sh
//! cargo run -p sbc-bench --example boardroom_voting
//! ```

use sbc_apps::voting::{BulletinBoardElection, Election, VotingError};
use sbc_primitives::group::SchnorrGroup;

fn main() -> Result<(), VotingError> {
    // Seven board members vote among three options.
    let mut election = Election::new(SchnorrGroup::default_256(), 7, 3, b"boardroom")?;
    let votes = [0usize, 2, 1, 1, 2, 1, 1];
    for (voter, &candidate) in votes.iter().enumerate() {
        election.vote(voter, candidate)?;
    }
    let result = election.finish_epoch()?;
    println!("motion 1 tally (round {}):", result.tally_round);
    for (c, n) in result.counts.iter().enumerate() {
        println!("  option {c}: {n} votes");
    }
    assert_eq!(result.counts, vec![1, 4, 2]);
    assert_eq!(result.ballots_accepted, 7);

    // A second motion on the same electorate: no re-keying, no new world.
    let votes = [1usize, 1, 0, 1, 0, 1, 1];
    for (voter, &candidate) in votes.iter().enumerate() {
        election.vote(voter, candidate)?;
    }
    let result = election.finish_epoch()?;
    println!("motion 2 tally (round {}):", result.tally_round);
    for (c, n) in result.counts.iter().enumerate() {
        println!("  option {c}: {n} votes");
    }
    assert_eq!(result.counts, vec![2, 5, 0]);

    // Fairness comparison: on a bulletin board, partial tallies leak
    // mid-phase (that's why [SP15] needed the trusted control voter).
    let mut bb = BulletinBoardElection::new(SchnorrGroup::tiny(), 3, 2, b"bb-demo");
    bb.vote(0, 1);
    bb.vote(1, 0);
    let partial = bb.partial_tally().expect("partial tally computable");
    println!("bulletin-board baseline: partial tally mid-phase = {partial:?} (fairness broken)");
    Ok(())
}
