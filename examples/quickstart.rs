//! Quickstart: run a simultaneous broadcast among five parties with the
//! fallible session API.
//!
//! ```sh
//! cargo run -p sbc-bench --example quickstart
//! ```

use sbc_core::api::{SbcError, SbcSession};

fn main() -> Result<(), SbcError> {
    // Five parties, default parameters (Φ = 3 rounds, ∆ = 2 rounds).
    // Invalid parameters are rejected here with SbcError::InvalidParams
    // instead of panicking deep inside the stack.
    let mut session = SbcSession::builder(5).seed(b"quickstart").build()?;

    // Three of them broadcast — simultaneity means none of these messages
    // can depend on any other, and liveness means the two silent parties
    // do not block termination.
    session.submit(0, b"alice: commit 7a1f")?;
    session.submit(2, b"carol: commit 99d2")?;
    session.submit(4, b"erin:  commit 3c44")?;

    // Misuse is an error value, not a crash: party 9 does not exist.
    assert!(matches!(
        session.submit(9, b"mallory"),
        Err(SbcError::PartyOutOfRange { party: 9, n: 5 })
    ));

    let result = session.run_to_completion()?;
    println!("released at round {}:", result.release_round);
    for (i, m) in result.messages.iter().enumerate() {
        println!("  [{i}] {}", String::from_utf8_lossy(m));
    }
    assert_eq!(result.messages.len(), 3);
    Ok(())
}
