//! Quickstart: run a simultaneous broadcast among five parties.
//!
//! ```sh
//! cargo run -p sbc-bench --example quickstart
//! ```

use sbc_core::api::SbcSession;

fn main() {
    // Five parties, default parameters (Φ = 3 rounds, ∆ = 2 rounds).
    let mut session = SbcSession::builder(5).seed(b"quickstart").build();

    // Three of them broadcast — simultaneity means none of these messages
    // can depend on any other, and liveness means the two silent parties
    // do not block termination.
    session.submit(0, b"alice: commit 7a1f");
    session.submit(2, b"carol: commit 99d2");
    session.submit(4, b"erin:  commit 3c44");

    let result = session.run_to_completion();
    println!("released at round {}:", result.release_round);
    for (i, m) in result.messages.iter().enumerate() {
        println!("  [{i}] {}", String::from_utf8_lossy(m));
    }
    assert_eq!(result.messages.len(), 3);
}
