//! A sealed-bid auction house over simultaneous broadcast: **concurrent
//! lots**, one shared world.
//!
//! Every lot is one SBC instance of an [`SbcPool`]: bidders submit sealed
//! bids per lot during the shared broadcast period, nothing opens until
//! the period ends, and all lots settle together on one clock. No bidder —
//! not even a dishonest majority of them — can shade a bid based on the
//! others', on this lot or any other. Compare with the naive commit-free
//! channel where the last bidder wins every time.
//!
//! ```sh
//! cargo run -p sbc-bench --example sealed_bid_auction
//! ```

use sbc_core::api::SbcError;
use sbc_core::baseline::copycat_attack_on_commit_free;
use sbc_core::pool::SbcPool;

fn main() -> Result<(), SbcError> {
    // Three lots on the block at once, four bidders.
    let lots = ["amphora", "bronze-mirror", "codex"];
    let bids: [&[(u32, u64)]; 3] = [
        &[(0, 420), (1, 333), (2, 407)],
        &[(1, 150), (3, 180)],
        &[(0, 90), (2, 95), (3, 88)],
    ];

    let mut house = SbcPool::builder(4).phi(4).seed(b"auction-house").build()?;
    let ids: Vec<_> = lots
        .iter()
        .map(|_| house.open_instance())
        .collect::<Result<_, _>>()?;
    for (lot, lot_bids) in ids.iter().zip(bids) {
        for (bidder, amount) in lot_bids {
            let bid = format!("bidder-{bidder}:{amount:08}");
            house.submit(*lot, *bidder, bid.as_bytes())?;
        }
    }

    // One shared clock: every tick advances all three lots; they release
    // on the same round and nothing opens early on any of them.
    let mut settled = Vec::new();
    while settled.len() < ids.len() {
        settled.extend(house.step_round()?);
    }

    for ((lot, result), name) in settled.iter().zip(lots) {
        let winner = result
            .messages
            .iter()
            .map(|m| String::from_utf8_lossy(m).to_string())
            .max_by_key(|s| s.split(':').nth(1).unwrap().parse::<u64>().unwrap())
            .expect("bids present");
        println!(
            "{lot} ({name}): {} sealed bids opened at round {} — winner {winner}",
            result.messages.len(),
            result.release_round
        );
    }
    assert_eq!(settled.len(), 3);
    assert!(settled
        .iter()
        .all(|(_, r)| r.release_round == settled[0].1.release_round));

    // A late bid — after the shared period closed — is rejected as an
    // error value on every lot, not silently dropped.
    assert!(matches!(
        house.submit(ids[0], 1, b"bidder-1:99999999"),
        Err(SbcError::SubmitAfterClose { .. })
    ));

    // The baseline shows what SBC prevents: on a commit-free channel a
    // rushing adversary trivially correlates with honest bids.
    assert!(copycat_attack_on_commit_free(b"bid:420"));
    println!("naive channel: copy-cat attack succeeds (as expected)");
    Ok(())
}
