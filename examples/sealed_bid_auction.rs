//! A sealed-bid auction over simultaneous broadcast.
//!
//! Every bidder submits a bid during the broadcast period; nothing opens
//! until the period ends, so no bidder — not even a dishonest majority of
//! them — can shade its bid based on the others'. Compare with the naive
//! commit-free channel where the last bidder wins every time.
//!
//! ```sh
//! cargo run -p sbc-bench --example sealed_bid_auction
//! ```

use sbc_core::api::{SbcError, SbcSession};
use sbc_core::baseline::copycat_attack_on_commit_free;

fn main() -> Result<(), SbcError> {
    let bids: [(u32, u64); 4] = [(0, 420), (1, 333), (2, 407), (3, 390)];

    let mut session = SbcSession::builder(4).phi(4).seed(b"auction").build()?;
    for (bidder, amount) in bids {
        let bid = format!("bidder-{bidder}:{amount:08}");
        session.submit(bidder, bid.as_bytes())?;
    }
    let result = session.run_to_completion()?;

    // Everyone opens the same set of bids at the same round; highest wins.
    let winner = result
        .messages
        .iter()
        .map(|m| String::from_utf8_lossy(m).to_string())
        .max_by_key(|s| s.split(':').nth(1).unwrap().parse::<u64>().unwrap())
        .expect("bids present");
    println!("sealed bids opened at round {}:", result.release_round);
    for m in &result.messages {
        println!("  {}", String::from_utf8_lossy(m));
    }
    println!("winner: {winner}");
    assert!(winner.starts_with("bidder-0"));

    // A late bid — after the period closed — is rejected as an error value,
    // not silently dropped.
    assert!(matches!(
        session.submit(1, b"bidder-1:99999999"),
        Err(SbcError::SubmitAfterClose { .. })
    ));

    // The baseline shows what SBC prevents: on a commit-free channel a
    // rushing adversary trivially correlates with honest bids.
    assert!(copycat_attack_on_commit_free(b"bid:420"));
    println!("naive channel: copy-cat attack succeeds (as expected)");
    Ok(())
}
