//! An unbiasable randomness beacon (DURS, paper §6.1), run as a
//! multi-epoch service: one SBC world, a fresh beacon value per epoch.
//!
//! Parties XOR their contributions through simultaneous broadcast. The
//! last-revealer attack that fully biases a naive beacon does nothing
//! here: contributions are time-locked until the period ends.
//!
//! ```sh
//! cargo run -p sbc-bench --example randomness_beacon
//! ```

use sbc_apps::durs::{
    last_revealer_attack, last_revealer_attack_on_durs, DursPool, DursSession, URS_LEN,
};
use sbc_core::api::SbcError;

fn main() -> Result<(), SbcError> {
    // A beacon service: three epochs over the same session — the world
    // stack (clock, oracle, functionalities) is built exactly once.
    let mut session = DursSession::new(4, b"beacon-demo")?;
    for _ in 0..3 {
        for p in 0..4 {
            session.contribute(p)?;
        }
        let result = session.run_epoch()?;
        println!(
            "epoch {} beacon output ({} contributions, round {}):",
            session.epoch() - 1,
            result.contributions,
            result.release_round
        );
        println!("  {}", sbc_primitives::hex::encode(&result.urs));
    }

    // A beacon *service* rarely runs one schedule: run two overlapping
    // streams (say block randomness and committee draws) over one shared
    // pool — stream B opens while stream A is mid-period, both on one
    // clock.
    let mut streams = DursPool::new(4, b"beacon-streams")?;
    let block = streams.open_stream()?;
    for p in 0..4 {
        streams.contribute(block, p)?;
    }
    streams.step_round()?;
    streams.step_round()?;
    let committee = streams.open_stream()?;
    for p in 0..4 {
        streams.contribute(committee, p)?;
    }
    let rb = streams.run_epoch(block)?;
    let rc = streams.run_epoch(committee)?;
    println!(
        "overlapping streams: block round {} / committee round {}:",
        rb.release_round, rc.release_round
    );
    println!("  block:     {}", sbc_primitives::hex::encode(&rb.urs));
    println!("  committee: {}", sbc_primitives::hex::encode(&rc.urs));
    assert!(rc.release_round > rb.release_round, "offset schedules");
    assert_ne!(rb.urs, rc.urs, "independent streams");

    // Attack comparison: the adversary wants the output to be all-0x42.
    let target = [0x42u8; URS_LEN];
    let biased = last_revealer_attack(&[[7u8; URS_LEN], [9u8; URS_LEN]], &target);
    println!(
        "naive beacon under last-revealer attack: {}",
        sbc_primitives::hex::encode(&biased)
    );
    assert_eq!(biased, target.to_vec(), "naive beacon is fully biased");

    let (out, hit) = last_revealer_attack_on_durs(b"beacon-attack", &target)?;
    println!(
        "DURS under the same attack:             {}",
        sbc_primitives::hex::encode(&out)
    );
    assert!(
        !hit,
        "DURS resists: the adversary's share cannot depend on the others"
    );
    Ok(())
}
